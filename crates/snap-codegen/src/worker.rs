//! Persistent native workers: the compiled tier without the spawn tax.
//!
//! PR 9's harness spawns a fresh process per invocation and pays ~1.8 ms
//! of spawn + line-protocol cost for a 1200-element map — 58× the batch
//! tier. This module keeps the compiled binary **alive**: every emitted
//! program (map and MapReduce) grows a `--serve` mode — read a
//! length-prefixed binary frame from stdin, process it, write the
//! response frame, repeat until EOF — and a process-wide [`NativePool`]
//! keeps one warm [`NativeWorker`] per program, keyed by program name
//! and pinned to the content-addressed binary the compile cache
//! produced. The FastFlow/SkePU farm lineage in PAPERS.md does exactly
//! this: long-lived workers that stream blocks, never respawning.
//!
//! **Frame protocol** (native endianness — worker and host are the same
//! machine by construction):
//!
//! * map request/response: `[u64 n][n × f64]`
//! * MapReduce request/response: `[u64 npairs]` then per pair
//!   `[u32 klen][klen key bytes][f64 val]` (one frame is one complete
//!   MapReduce job — grouping never spans frames)
//! * `[u64::MAX]` is the **poison frame**: the worker exits abruptly.
//!   It exists so crash recovery is deterministically testable.
//!
//! Binary `f64` frames are not a convenience: they are what makes the
//! tier *win*. The line protocol costs ~450 ns/element in
//! format/strtod/printf alone, which no amount of spawn amortization
//! recovers; raw bits cost ~4 ns/element of pipe bandwidth and are
//! trivially bit-exact, so the four-tier equivalence contract
//! (tree-walk ≡ bytecode ≡ batch ≡ native) holds with no round-trip
//! argument needed.
//!
//! **Lifecycle & crash ladder.** On first use of a program the pool
//! spawns `binary --serve`, reads the text handshake line
//! (`snap-native-worker <version> <kind>`), and verifies version and
//! payload kind before any frame is sent. A frame failure (worker
//! crashed, pipe closed, short read) discards the worker, respawns it
//! **once** (`codegen.worker_restarts`) and retries the frame; a second
//! failure returns the error so the caller falls back to the in-process
//! batch tier (`codegen.worker_fallbacks` — counted at the fallback
//! site). Warm workers idle past [`NativePool::idle_after`] are reaped
//! on the next pool access, and a recompile under a new cache key
//! retires the old worker instead of letting it serve stale code
//! (`codegen.worker_reaped` either way).
//!
//! **Registry.** [`register_native_map`] compiles a ring's emitted map
//! program and records it keyed on the ring's `Arc` identity (the
//! `compile_cached` idiom: `Weak` + `ptr_eq` so ABA pointer reuse can't
//! resurrect a dead registration). `snap-workers::ring_fn` consults
//! [`native_program_for`] — unregistered rings never route native, so
//! `NativePolicy::Auto` is a no-op until a caller opts a ring in.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use snap_ast::Ring;
use snap_trace::well_known;

use crate::harness::{fnv1a, Harness, HarnessError};
use crate::openmp::emit_map_openmp;

/// Protocol version the host expects in the worker handshake line.
pub const NATIVE_WORKER_VERSION: u32 = 1;

/// The poison frame count: a worker that reads it exits abruptly
/// (exit code 86) without answering — the deterministic crash hook.
pub const POISON_FRAME: u64 = u64::MAX;

/// How long a warm worker may sit idle before the pool reaps it.
pub const NATIVE_IDLE_REAP: Duration = Duration::from_secs(30);

/// What payload a compiled `--serve` program processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerKind {
    /// `f64` lanes in, `f64` lanes out.
    Map,
    /// Key/value pairs in, reduced groups out.
    MapReduce,
}

impl WorkerKind {
    /// The kind token the worker announces in its handshake line.
    pub fn label(self) -> &'static str {
        match self {
            WorkerKind::Map => "map",
            WorkerKind::MapReduce => "mapreduce",
        }
    }
}

/// A compiled program a warm worker can serve: the pool key (`name`),
/// the content-addressed binary the compile cache published, and the
/// payload kind. The binary path doubles as the staleness check — a
/// recompile under a new cache key yields a new path, and the pool
/// retires any worker still holding the old one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeProgram {
    /// Stable program name (the pool key; one warm worker per name).
    pub name: String,
    /// Content-addressed binary path from [`Harness::compile`].
    pub binary: PathBuf,
    /// Payload kind the `--serve` loop speaks.
    pub kind: WorkerKind,
}

fn run_failed(name: &str, message: String) -> HarnessError {
    HarnessError::RunFailed {
        name: name.to_owned(),
        message,
    }
}

/// A `f64` slice viewed as its native-endian bytes, copy-free — the
/// map-frame payload IS the slice's memory. Safe: `f64` has no invalid
/// bit patterns, u8 has alignment 1, and the length math is exact.
fn f64_bytes(values: &[f64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 8) }
}

/// Mutable byte view of a `f64` slice, so a response frame can be read
/// straight into the output vector (same safety argument as
/// [`f64_bytes`]; every byte pattern written is a valid `f64`).
fn f64_bytes_mut(values: &mut [f64]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(values.as_mut_ptr().cast::<u8>(), values.len() * 8) }
}

/// One live `--serve` process: spawned once, fed frames until it is
/// dropped (which kills and reaps the child). Frames are synchronous —
/// write request, read response — so a worker is driven from behind a
/// mutex in the pool.
#[derive(Debug)]
pub struct NativeWorker {
    name: String,
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl NativeWorker {
    /// Spawn `binary --serve` and verify the handshake line
    /// (`snap-native-worker <version> <kind>`). Bumps
    /// `codegen.worker_spawns` on success.
    pub fn spawn(program: &NativeProgram) -> Result<NativeWorker, HarnessError> {
        let mut child = Command::new(&program.binary)
            .arg("--serve")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| run_failed(&program.name, format!("spawning worker: {e}")))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut stdout = BufReader::new(stdout);
        let mut line = String::new();
        let handshake = stdout.read_line(&mut line);
        let expected = format!(
            "snap-native-worker {NATIVE_WORKER_VERSION} {}",
            program.kind.label()
        );
        let ok = matches!(handshake, Ok(n) if n > 0) && line.trim_end() == expected;
        if !ok {
            let _ = child.kill();
            let _ = child.wait();
            return Err(run_failed(
                &program.name,
                format!("bad worker handshake: got {line:?}, want {expected:?}"),
            ));
        }
        well_known::CODEGEN_WORKER_SPAWNS.incr();
        Ok(NativeWorker {
            name: program.name.clone(),
            child,
            stdin,
            stdout,
        })
    }

    fn io_failed(&self, what: &str, e: std::io::Error) -> HarnessError {
        run_failed(&self.name, format!("{what}: {e}"))
    }

    fn read_header(&mut self) -> Result<u64, HarnessError> {
        let mut header = [0u8; 8];
        self.stdout
            .read_exact(&mut header)
            .map_err(|e| self.io_failed("reading frame header", e))?;
        Ok(u64::from_ne_bytes(header))
    }

    /// Send one map frame and read the response: `[u64 n][n × f64]`
    /// both ways, bit-exact. Bumps `codegen.worker_frames` and
    /// `codegen.native_elems`.
    ///
    /// Zero-copy on both legs: the request payload is the caller's
    /// slice viewed as bytes, and the response is read straight into
    /// the output vector. The per-element cost of a frame is therefore
    /// pure pipe bandwidth — this is what lets the warm worker undercut
    /// `eval_batch` instead of drowning the compiled tier in encode
    /// overhead.
    pub fn map_frame(&mut self, inputs: &[f64]) -> Result<Vec<f64>, HarnessError> {
        self.stdin
            .write_all(&(inputs.len() as u64).to_ne_bytes())
            .and_then(|()| self.stdin.write_all(f64_bytes(inputs)))
            .and_then(|()| self.stdin.flush())
            .map_err(|e| self.io_failed("writing map frame", e))?;
        let n = self.read_header()?;
        if n != inputs.len() as u64 {
            return Err(run_failed(
                &self.name,
                format!("map frame answered {n} elements for {}", inputs.len()),
            ));
        }
        let mut out = vec![0.0f64; inputs.len()];
        self.stdout
            .read_exact(f64_bytes_mut(&mut out))
            .map_err(|e| self.io_failed("reading map frame", e))?;
        well_known::CODEGEN_WORKER_FRAMES.incr();
        well_known::CODEGEN_NATIVE_ELEMS.add(inputs.len() as u64);
        Ok(out)
    }

    /// Send one MapReduce frame (a complete job: map, shuffle, reduce)
    /// and read the reduced groups back.
    pub fn mapreduce_frame(
        &mut self,
        pairs: &[(String, f64)],
    ) -> Result<Vec<(String, f64)>, HarnessError> {
        let mut frame = Vec::with_capacity(8 + pairs.len() * 24);
        frame.extend_from_slice(&(pairs.len() as u64).to_ne_bytes());
        for (key, val) in pairs {
            frame.extend_from_slice(&(key.len() as u32).to_ne_bytes());
            frame.extend_from_slice(key.as_bytes());
            frame.extend_from_slice(&val.to_ne_bytes());
        }
        self.stdin
            .write_all(&frame)
            .and_then(|()| self.stdin.flush())
            .map_err(|e| self.io_failed("writing mapreduce frame", e))?;
        let groups = self.read_header()?;
        if groups > pairs.len() as u64 {
            return Err(run_failed(
                &self.name,
                format!(
                    "mapreduce frame answered {groups} groups for {} pairs",
                    pairs.len()
                ),
            ));
        }
        let mut out = Vec::with_capacity(groups as usize);
        for _ in 0..groups {
            let mut klen = [0u8; 4];
            self.stdout
                .read_exact(&mut klen)
                .map_err(|e| self.io_failed("reading group key length", e))?;
            let mut key = vec![0u8; u32::from_ne_bytes(klen) as usize];
            self.stdout
                .read_exact(&mut key)
                .map_err(|e| self.io_failed("reading group key", e))?;
            let mut val = [0u8; 8];
            self.stdout
                .read_exact(&mut val)
                .map_err(|e| self.io_failed("reading group value", e))?;
            out.push((
                String::from_utf8_lossy(&key).into_owned(),
                f64::from_ne_bytes(val),
            ));
        }
        well_known::CODEGEN_WORKER_FRAMES.incr();
        well_known::CODEGEN_NATIVE_ELEMS.add(pairs.len() as u64);
        Ok(out)
    }

    /// Send the poison frame and wait for the worker to die. The dead
    /// worker is left in place so the next frame exercises the recovery
    /// ladder — this is a test/chaos hook, not part of normal operation.
    pub fn poison(&mut self) {
        let _ = self
            .stdin
            .write_all(&POISON_FRAME.to_ne_bytes())
            .and_then(|()| self.stdin.flush());
        let _ = self.child.wait();
    }

    /// Whether the serve process is still running.
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// The worker's OS process id (for tests asserting respawn).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }
}

impl Drop for NativeWorker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct PoolEntry {
    binary: PathBuf,
    kind: WorkerKind,
    slot: Arc<Mutex<Option<NativeWorker>>>,
    last_used: Instant,
}

/// One warm worker per compiled program. Frames to the same program
/// serialize on the worker's mutex (the `--serve` protocol is
/// synchronous); different programs proceed concurrently. See the
/// module docs for the crash ladder and staleness rules.
pub struct NativePool {
    entries: Mutex<HashMap<String, PoolEntry>>,
    idle_after: Duration,
}

impl Default for NativePool {
    fn default() -> Self {
        NativePool::new(NATIVE_IDLE_REAP)
    }
}

impl NativePool {
    /// A pool reaping workers idle longer than `idle_after`.
    pub fn new(idle_after: Duration) -> NativePool {
        NativePool {
            entries: Mutex::new(HashMap::new()),
            idle_after,
        }
    }

    /// Find-or-create the worker slot for `program`, applying the two
    /// retirement rules: entries idle past the deadline are dropped,
    /// and an entry whose binary no longer matches the program's
    /// content-addressed path is replaced (the old worker dies with its
    /// last `Arc`, so an in-flight frame finishes before the kill).
    fn checkout(&self, program: &NativeProgram) -> Arc<Mutex<Option<NativeWorker>>> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let idle_after = self.idle_after;
        entries.retain(|name, entry| {
            let keep = name == &program.name || now.duration_since(entry.last_used) < idle_after;
            if !keep {
                well_known::CODEGEN_WORKER_REAPED.incr();
            }
            keep
        });
        let entry = entries
            .entry(program.name.clone())
            .or_insert_with(|| PoolEntry {
                binary: program.binary.clone(),
                kind: program.kind,
                slot: Arc::new(Mutex::new(None)),
                last_used: now,
            });
        if entry.binary != program.binary || entry.kind != program.kind {
            well_known::CODEGEN_WORKER_REAPED.incr();
            entry.binary = program.binary.clone();
            entry.kind = program.kind;
            entry.slot = Arc::new(Mutex::new(None));
        }
        entry.last_used = now;
        Arc::clone(&entry.slot)
    }

    /// Run one frame through the warm worker with the crash ladder
    /// applied: spawn on first use, respawn exactly once on a frame
    /// failure (`codegen.worker_restarts`), propagate the error after a
    /// second failure so the caller can fall back in-process.
    fn with_worker<T>(
        &self,
        program: &NativeProgram,
        frame: impl Fn(&mut NativeWorker) -> Result<T, HarnessError>,
    ) -> Result<T, HarnessError> {
        let slot = self.checkout(program);
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(NativeWorker::spawn(program)?);
        }
        let first = frame(guard.as_mut().expect("worker just ensured"));
        match first {
            Ok(out) => Ok(out),
            Err(_) => {
                // The worker (or its protocol state) is gone; discard it,
                // respawn once, and retry the same frame.
                *guard = None;
                let mut worker = NativeWorker::spawn(program)?;
                well_known::CODEGEN_WORKER_RESTARTS.incr();
                match frame(&mut worker) {
                    Ok(out) => {
                        *guard = Some(worker);
                        Ok(out)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// One map frame through the warm worker for `program`.
    pub fn map_frame(
        &self,
        program: &NativeProgram,
        inputs: &[f64],
    ) -> Result<Vec<f64>, HarnessError> {
        if program.kind != WorkerKind::Map {
            return Err(run_failed(&program.name, "not a map program".into()));
        }
        self.with_worker(program, |w| w.map_frame(inputs))
    }

    /// One MapReduce frame (a complete job) through the warm worker.
    pub fn mapreduce_frame(
        &self,
        program: &NativeProgram,
        pairs: &[(String, f64)],
    ) -> Result<Vec<(String, f64)>, HarnessError> {
        if program.kind != WorkerKind::MapReduce {
            return Err(run_failed(&program.name, "not a mapreduce program".into()));
        }
        self.with_worker(program, |w| w.mapreduce_frame(pairs))
    }

    /// Poison the named warm worker (send [`POISON_FRAME`], wait for
    /// death, leave the corpse in the slot). Returns false when no live
    /// worker exists under that name. Test/chaos hook.
    pub fn poison(&self, name: &str) -> bool {
        let slot = {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            entries.get(name).map(|e| Arc::clone(&e.slot))
        };
        let Some(slot) = slot else { return false };
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_mut() {
            Some(worker) => {
                worker.poison();
                true
            }
            None => false,
        }
    }

    /// Drop the named entry (killing its worker) regardless of age.
    pub fn retire(&self, name: &str) -> bool {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let removed = entries.remove(name).is_some();
        if removed {
            well_known::CODEGEN_WORKER_REAPED.incr();
        }
        removed
    }

    /// Number of entries currently warm (spawned or pending spawn).
    pub fn warm_entries(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The OS pid of the named warm worker, if one is live.
    pub fn worker_pid(&self, name: &str) -> Option<u32> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let slot = Arc::clone(&entries.get(name)?.slot);
        drop(entries);
        let guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().map(NativeWorker::pid)
    }
}

/// The process-wide warm-worker pool (lazily created).
pub fn native_pool() -> &'static NativePool {
    static POOL: OnceLock<NativePool> = OnceLock::new();
    POOL.get_or_init(NativePool::default)
}

// ---------------------------------------------------------------------
// Ring registry: which rings have a harness-compiled program
// ---------------------------------------------------------------------

type Registry = Mutex<HashMap<usize, (Weak<Ring>, NativeProgram)>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Emit, compile (content-addressed cache), and register the native map
/// program for `ring`. After this, `NativePolicy::Auto` in
/// `snap-workers::ring_fn` routes this ring's large columnar chunks
/// through the warm worker. Errors when the ring does not translate to
/// C, no toolchain exists, or the compile fails.
pub fn register_native_map(ring: &Arc<Ring>) -> Result<NativeProgram, HarnessError> {
    let source = emit_map_openmp(ring)
        .map_err(|e| HarnessError::Io(format!("ring does not translate to C: {e}")))?;
    let harness = Harness::detect()?;
    let name = format!("native_ring_{:016x}", fnv1a(source.as_bytes()));
    let compiled = harness.compile(&name, &[("map_program.c", &source)], true)?;
    let program = NativeProgram {
        name,
        binary: compiled.binary,
        kind: WorkerKind::Map,
    };
    register_native_program(ring, program.clone());
    Ok(program)
}

/// Record `program` as the native implementation of `ring`, keyed on
/// the `Arc`'s pointer identity ([`native_program_for`] guards against
/// ABA reuse with a `Weak` + `ptr_eq` check). Public so tests can
/// inject chaos binaries; normal callers use [`register_native_map`].
pub fn register_native_program(ring: &Arc<Ring>, program: NativeProgram) {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    // Opportunistic sweep: drop entries whose ring died, so the map
    // stays proportional to live registrations.
    if map.len() >= 64 {
        map.retain(|_, (weak, _)| weak.strong_count() > 0);
    }
    map.insert(Arc::as_ptr(ring) as usize, (Arc::downgrade(ring), program));
}

/// The registered native program for `ring`, if its registration is
/// still live (same `Arc`, not a reused allocation).
pub fn native_program_for(ring: &Arc<Ring>) -> Option<NativeProgram> {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    let (weak, program) = map.get(&(Arc::as_ptr(ring) as usize))?;
    let strong = weak.upgrade()?;
    Arc::ptr_eq(&strong, ring).then(|| program.clone())
}

/// Remove `ring`'s registration; returns whether one existed.
pub fn unregister_native(ring: &Arc<Ring>) -> bool {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.remove(&(Arc::as_ptr(ring) as usize)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_program(name: &str) -> NativeProgram {
        NativeProgram {
            name: name.to_owned(),
            binary: PathBuf::from(format!("/nonexistent/{name}")),
            kind: WorkerKind::Map,
        }
    }

    #[test]
    fn registry_is_keyed_on_arc_identity() {
        use snap_ast::builder::*;
        let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(2.0))));
        let twin = Arc::new(Ring::reporter(mul(empty_slot(), num(2.0))));
        register_native_program(&ring, fake_program("identity_test"));
        assert!(native_program_for(&ring).is_some());
        assert!(
            native_program_for(&twin).is_none(),
            "structurally equal ring must not hit the registration"
        );
        assert!(unregister_native(&ring));
        assert!(native_program_for(&ring).is_none());
    }

    #[test]
    fn pool_rejects_mismatched_kinds() {
        let pool = NativePool::default();
        let mut program = fake_program("kind_test");
        program.kind = WorkerKind::MapReduce;
        assert!(pool.map_frame(&program, &[1.0]).is_err());
        let program = fake_program("kind_test2");
        assert!(pool.mapreduce_frame(&program, &[]).is_err());
    }

    #[test]
    fn spawn_of_missing_binary_is_an_error_not_a_panic() {
        let pool = NativePool::default();
        let err = pool.map_frame(&fake_program("missing"), &[1.0]);
        assert!(matches!(err, Err(HarnessError::RunFailed { .. })));
    }

    #[test]
    fn idle_entries_are_reaped_on_next_checkout() {
        let pool = NativePool::new(Duration::from_millis(1));
        // Entries are created even when the spawn later fails, so the
        // reaping path is observable without a toolchain.
        let _ = pool.map_frame(&fake_program("idle_a"), &[1.0]);
        assert_eq!(pool.warm_entries(), 1);
        std::thread::sleep(Duration::from_millis(5));
        let _ = pool.map_frame(&fake_program("idle_b"), &[1.0]);
        assert_eq!(pool.warm_entries(), 1, "stale idle_a must be gone");
        assert!(pool.retire("idle_b"));
        assert_eq!(pool.warm_entries(), 0);
    }
}
