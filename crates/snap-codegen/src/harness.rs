//! The native tier: compile emitted C/OpenMP with the system toolchain
//! and run it on the same inputs the VM uses.
//!
//! The paper's §6 claim is that the pictures are an IDE for *real*
//! parallel targets. This module closes that loop: a [`Toolchain`] probe
//! (`cc`/`gcc`/`clang`, `-fopenmp` detected at runtime with a
//! single-thread fallback), a content-addressed compile cache under
//! `target/codegen-cache/`, and compile/run plumbing that pipes datasets
//! into the generated `main` over a line/CSV protocol and reads results
//! back for differential comparison against the interpreted tiers
//! (tree-walk ≡ bytecode ≡ batch ≡ native).
//!
//! Equivalence rules, in order of strictness:
//! - map programs are compared **bit-for-bit** ([`bits_eq`]): the
//!   emitted C computes the same IEEE-754 double operations in the same
//!   order as [`snap_ast::bytecode::num_binop`] (the harness compiles
//!   with `-ffp-contract=off` so GCC cannot fuse `a*b+c` into an FMA);
//! - any NaN matches any NaN (the PR 6 rule — payloads and sign are not
//!   observable in Snap!);
//! - MapReduce *reductions* are compared with a relative tolerance
//!   ([`MAPREDUCE_REL_TOL`]): the generated kvp.h keeps the paper's
//!   `float val`, and the OpenMP reduction loop may reassociate, so the
//!   native sum is allowed to differ in low-order bits.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, OnceLock};

use snap_ast::pure::PureFn;
use snap_ast::{Ring, Value};
use snap_trace::well_known;

/// Relative tolerance for reassociated / `float`-valued OpenMP
/// reductions (documented in DESIGN.md §Native tier). The kvp.h value
/// field is a `float` (paper fidelity), so ~7 significant digits
/// survive; 1e-4 leaves headroom for reassociation on top.
pub const MAPREDUCE_REL_TOL: f64 = 1e-4;

/// Errors from toolchain probing, compilation, or execution.
#[derive(Debug, Clone)]
pub enum HarnessError {
    /// No C compiler was found on this host.
    ToolchainMissing,
    /// The compiler rejected the emitted sources.
    CompileFailed {
        /// Program name (cache key prefix).
        name: String,
        /// Compiler stderr.
        stderr: String,
    },
    /// The compiled binary exited nonzero or could not be spawned.
    RunFailed {
        /// Program name.
        name: String,
        /// What happened.
        message: String,
    },
    /// Filesystem trouble (cache dir, temp files).
    Io(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::ToolchainMissing => {
                write!(f, "no C toolchain detected (tried $CC, cc, gcc, clang)")
            }
            HarnessError::CompileFailed { name, stderr } => {
                write!(f, "{name}: compilation failed:\n{stderr}")
            }
            HarnessError::RunFailed { name, message } => write!(f, "{name}: run failed: {message}"),
            HarnessError::Io(msg) => write!(f, "codegen harness I/O error: {msg}"),
        }
    }
}

impl std::error::Error for HarnessError {}

fn io_err(e: std::io::Error) -> HarnessError {
    HarnessError::Io(e.to_string())
}

/// A detected system C toolchain.
#[derive(Debug, Clone)]
pub struct Toolchain {
    /// Compiler command (`cc`, `gcc`, `clang`, or `$CC`).
    pub cc: String,
    /// First line of `--version` output.
    pub version: String,
    /// Whether `-fopenmp` compiles and links on this host. When false
    /// the harness still compiles every program — the pragmas are
    /// ignored and the binary runs single-threaded.
    pub openmp: bool,
    /// Whether the compiler accepts `-march=native`. Probed because
    /// clang on some targets (notably aarch64) rejects the spelling;
    /// when false the harness compiles for the baseline ISA.
    pub native_arch: bool,
}

/// Probe for a C compiler once per process; the result is cached.
///
/// Candidates, in order: `$CC`, `cc`, `gcc`, `clang`. A candidate is
/// accepted when `--version` succeeds. OpenMP support is probed by
/// actually compiling a one-line `#pragma omp parallel` program with
/// `-fopenmp`. Returns `None` (and bumps `codegen.toolchain_missing` on
/// every call, so skips stay visible in reports) when nothing works.
pub fn detect_toolchain() -> Option<&'static Toolchain> {
    static PROBE: OnceLock<Option<Toolchain>> = OnceLock::new();
    let found = PROBE.get_or_init(probe_toolchain).as_ref();
    if found.is_none() {
        well_known::CODEGEN_TOOLCHAIN_MISSING.incr();
    }
    found
}

fn probe_toolchain() -> Option<Toolchain> {
    let env_cc = std::env::var("CC").ok();
    let mut candidates: Vec<&str> = Vec::new();
    if let Some(cc) = env_cc.as_deref() {
        if !cc.is_empty() {
            candidates.push(cc);
        }
    }
    candidates.extend(["cc", "gcc", "clang"]);
    for cand in candidates {
        let out = Command::new(cand)
            .arg("--version")
            .stdin(Stdio::null())
            .output();
        let Ok(out) = out else { continue };
        if !out.status.success() {
            continue;
        }
        let version = String::from_utf8_lossy(&out.stdout)
            .lines()
            .next()
            .unwrap_or("")
            .to_owned();
        let openmp = probe_openmp(cand);
        let native_arch = probe_native_arch(cand);
        return Some(Toolchain {
            cc: cand.to_owned(),
            version,
            openmp,
            native_arch,
        });
    }
    None
}

/// Compile a minimal OpenMP program to see whether `-fopenmp` links.
fn probe_openmp(cc: &str) -> bool {
    let dir = std::env::temp_dir().join(format!("snap-omp-probe-{}", std::process::id()));
    if fs::create_dir_all(&dir).is_err() {
        return false;
    }
    let src = dir.join("probe.c");
    let bin = dir.join("probe");
    let program = "#include <omp.h>\nint main(void) {\n    int n = 0;\n    #pragma omp parallel\n    { n = omp_get_thread_num(); }\n    return n >= 0 ? 0 : 1;\n}\n";
    let ok = fs::write(&src, program).is_ok()
        && Command::new(cc)
            .args(["-fopenmp", "-O1"])
            .arg(&src)
            .arg("-o")
            .arg(&bin)
            .stdin(Stdio::null())
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false);
    let _ = fs::remove_dir_all(&dir);
    ok
}

/// Compile a trivial program with `-march=native` to see whether the
/// compiler accepts the flag on this target.
fn probe_native_arch(cc: &str) -> bool {
    let dir = std::env::temp_dir().join(format!("snap-march-probe-{}", std::process::id()));
    if fs::create_dir_all(&dir).is_err() {
        return false;
    }
    let src = dir.join("probe.c");
    let bin = dir.join("probe");
    let ok = fs::write(&src, "int main(void) { return 0; }\n").is_ok()
        && Command::new(cc)
            .args(["-march=native", "-O1"])
            .arg(&src)
            .arg("-o")
            .arg(&bin)
            .stdin(Stdio::null())
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false);
    let _ = fs::remove_dir_all(&dir);
    ok
}

/// Where compiled codegen binaries are cached: `target/codegen-cache/`
/// when run from the repo root (CI, `codegen_check`), else a
/// per-user directory under the system temp dir (unit tests run with
/// the crate directory as CWD, where `./target` does not exist).
pub fn default_cache_dir() -> PathBuf {
    let target = Path::new("target");
    if target.is_dir() {
        target.join("codegen-cache")
    } else {
        std::env::temp_dir().join("snap-codegen-cache")
    }
}

/// FNV-1a 64-bit over bytes — the compile-cache content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A compiled program, ready to run.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Program name (for error messages).
    pub name: String,
    /// Path of the cached binary.
    pub binary: PathBuf,
    /// Whether this compile was served from the cache.
    pub cached: bool,
}

impl CompiledProgram {
    /// Run the binary feeding `stdin`; returns captured stdout. Bumps
    /// `codegen.runs`; a nonzero exit or spawn failure is an error.
    pub fn run(&self, stdin: &str) -> Result<String, HarnessError> {
        let mut child = Command::new(&self.binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| HarnessError::RunFailed {
                name: self.name.clone(),
                message: e.to_string(),
            })?;
        // The harness writes at most a few MB and the generated main
        // reads stdin to EOF before producing output, so a plain
        // write-then-wait cannot deadlock on pipe buffers at the sizes
        // the scenarios use. Keep it simple.
        if let Some(mut pipe) = child.stdin.take() {
            pipe.write_all(stdin.as_bytes())
                .map_err(|e| HarnessError::RunFailed {
                    name: self.name.clone(),
                    message: format!("writing stdin: {e}"),
                })?;
        }
        let out = child
            .wait_with_output()
            .map_err(|e| HarnessError::RunFailed {
                name: self.name.clone(),
                message: e.to_string(),
            })?;
        if !out.status.success() {
            return Err(HarnessError::RunFailed {
                name: self.name.clone(),
                message: format!(
                    "exit {:?}: {}",
                    out.status.code(),
                    String::from_utf8_lossy(&out.stderr)
                ),
            });
        }
        well_known::CODEGEN_RUNS.incr();
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    }
}

/// Compile-and-run front end over a detected [`Toolchain`].
#[derive(Debug)]
pub struct Harness {
    toolchain: Toolchain,
    cache_dir: PathBuf,
}

impl Harness {
    /// A harness over the probed system toolchain, caching binaries in
    /// [`default_cache_dir`]. `Err(ToolchainMissing)` on bare hosts.
    pub fn detect() -> Result<Harness, HarnessError> {
        match detect_toolchain() {
            Some(tc) => Ok(Harness::with_toolchain(tc.clone(), default_cache_dir())),
            None => Err(HarnessError::ToolchainMissing),
        }
    }

    /// A harness over an explicit toolchain and cache directory.
    pub fn with_toolchain(toolchain: Toolchain, cache_dir: PathBuf) -> Harness {
        Harness {
            toolchain,
            cache_dir,
        }
    }

    /// The toolchain this harness compiles with.
    pub fn toolchain(&self) -> &Toolchain {
        &self.toolchain
    }

    /// The flags a compile will use (also part of the cache key).
    fn flags(&self, openmp: bool) -> Vec<&'static str> {
        // -ffp-contract=off: keep double arithmetic bit-identical to the
        // interpreter (no FMA fusion, even at -O3 / -march=native — IEEE
        // ops are exactly rounded at any vector width, so vectorizing
        // the lane loop is still bit-exact); -std=c99 pins the dialect
        // every emitted program targets; -Wall -Werror is the PR 9 bar
        // that every emitted program must clear.
        let mut flags = vec!["-O3", "-std=c99", "-Wall", "-Werror", "-ffp-contract=off"];
        if self.toolchain.native_arch {
            flags.push("-march=native");
        }
        if openmp && self.toolchain.openmp {
            flags.push("-fopenmp");
        } else {
            // Without -fopenmp the `#pragma omp` lines are unknown
            // pragmas; don't let -Werror turn the fallback into a
            // failure.
            flags.push("-Wno-unknown-pragmas");
        }
        flags
    }

    /// Compile named sources into a cached binary. The cache key hashes
    /// the source text, the flags, and the compiler identity, so a
    /// changed emitter or toolchain recompiles while reruns and the
    /// bench job reuse bits (`codegen.cache_hits`/`codegen.cache_misses`).
    pub fn compile(
        &self,
        name: &str,
        sources: &[(&str, &str)],
        openmp: bool,
    ) -> Result<CompiledProgram, HarnessError> {
        let flags = self.flags(openmp);
        let mut keyed = String::new();
        keyed.push_str(&self.toolchain.cc);
        keyed.push('\n');
        keyed.push_str(&self.toolchain.version);
        keyed.push('\n');
        for flag in &flags {
            keyed.push_str(flag);
            keyed.push(' ');
        }
        for (file, text) in sources {
            keyed.push_str(file);
            keyed.push('\n');
            keyed.push_str(text);
        }
        let hash = fnv1a(keyed.as_bytes());
        let binary = self.cache_dir.join(format!("{name}-{hash:016x}"));

        if binary.is_file() {
            well_known::CODEGEN_CACHE_HITS.incr();
            return Ok(CompiledProgram {
                name: name.to_owned(),
                binary,
                cached: true,
            });
        }
        well_known::CODEGEN_CACHE_MISSES.incr();

        fs::create_dir_all(&self.cache_dir).map_err(io_err)?;
        let work = self
            .cache_dir
            .join(format!("build-{name}-{hash:016x}-{}", std::process::id()));
        fs::create_dir_all(&work).map_err(io_err)?;
        let result = self.compile_in(&work, name, sources, &flags, &binary);
        let _ = fs::remove_dir_all(&work);
        result
    }

    fn compile_in(
        &self,
        work: &Path,
        name: &str,
        sources: &[(&str, &str)],
        flags: &[&str],
        binary: &Path,
    ) -> Result<CompiledProgram, HarnessError> {
        let mut c_files = Vec::new();
        for (file, text) in sources {
            let path = work.join(file);
            fs::write(&path, text).map_err(io_err)?;
            if file.ends_with(".c") {
                c_files.push(path);
            }
        }
        let tmp_bin = work.join("a.out");
        let out = Command::new(&self.toolchain.cc)
            .args(flags)
            .args(&c_files)
            .arg("-o")
            .arg(&tmp_bin)
            .arg("-lm")
            .stdin(Stdio::null())
            .output()
            .map_err(io_err)?;
        if !out.status.success() {
            return Err(HarnessError::CompileFailed {
                name: name.to_owned(),
                stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
            });
        }
        // rename() makes publication atomic: concurrent compiles of the
        // same key both succeed and one binary wins.
        fs::rename(&tmp_bin, binary).map_err(io_err)?;
        well_known::CODEGEN_COMPILES.incr();
        Ok(CompiledProgram {
            name: name.to_owned(),
            binary: binary.to_path_buf(),
            cached: false,
        })
    }

    /// Compile + run a generated *map* program: encode `inputs` one
    /// value per line, run, decode one value per line back. Bumps
    /// `codegen.native_elems` by the element count.
    pub fn run_map(
        &self,
        name: &str,
        source: &str,
        inputs: &[f64],
    ) -> Result<Vec<f64>, HarnessError> {
        let program = self.compile(name, &[("map_program.c", source)], true)?;
        let stdout = program.run(&encode_values(inputs))?;
        let outputs = decode_values(&stdout)?;
        well_known::CODEGEN_NATIVE_ELEMS.add(inputs.len() as u64);
        if outputs.len() != inputs.len() {
            return Err(HarnessError::RunFailed {
                name: name.to_owned(),
                message: format!(
                    "expected {} output lines, got {}",
                    inputs.len(),
                    outputs.len()
                ),
            });
        }
        Ok(outputs)
    }

    /// Compile + run a generated *MapReduce* program (kvp.h + mapred.c +
    /// driver.c): encode `pairs` as `key,value` CSV lines, run, decode
    /// sorted `key value` result lines back.
    pub fn run_mapreduce(
        &self,
        name: &str,
        program: &crate::openmp::OpenMpProgram,
        pairs: &[(String, f64)],
    ) -> Result<Vec<(String, f64)>, HarnessError> {
        let compiled = self.compile(
            name,
            &[
                ("kvp.h", &program.kvp_h),
                ("mapred.c", &program.mapred_c),
                ("driver.c", &program.driver_c),
            ],
            true,
        )?;
        let stdout = compiled.run(&encode_pairs(pairs))?;
        well_known::CODEGEN_NATIVE_ELEMS.add(pairs.len() as u64);
        decode_pairs(&stdout)
    }
}

// ---------------------------------------------------------------------
// Line/CSV protocol
// ---------------------------------------------------------------------

/// Encode doubles for the generated map `main`: one value per line.
/// `{:e}` is Rust's shortest round-trip exponential form — C `strtod`
/// reads it back to the identical bits, and subnormals stay short
/// (plain `{}` of 5e-324 is ~770 characters, overflowing the generated
/// reader's line buffer).
pub fn encode_values(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 16);
    for v in values {
        out.push_str(&format!("{v:e}"));
        out.push('\n');
    }
    out
}

/// Decode one double per non-empty line (C prints `%.17g`, which
/// round-trips; `inf`/`nan` spellings parse case-insensitively).
pub fn decode_values(text: &str) -> Result<Vec<f64>, HarnessError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: f64 = line
            .parse()
            .map_err(|e| HarnessError::Io(format!("bad protocol line {line:?}: {e}")))?;
        out.push(v);
    }
    Ok(out)
}

/// Encode `(key, value)` pairs as `key,value` CSV lines. The generated
/// reader splits on the *last* comma, so keys containing commas survive.
pub fn encode_pairs(pairs: &[(String, f64)]) -> String {
    let mut out = String::with_capacity(pairs.len() * 24);
    for (key, val) in pairs {
        out.push_str(key);
        out.push(',');
        out.push_str(&format!("{val:e}"));
        out.push('\n');
    }
    out
}

/// Decode the driver's `key value` output lines (split on last space).
pub fn decode_pairs(text: &str) -> Result<Vec<(String, f64)>, HarnessError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let Some(idx) = line.rfind(' ') else {
            return Err(HarnessError::Io(format!("bad result line {line:?}")));
        };
        let key = line[..idx].to_owned();
        let val: f64 = line[idx + 1..]
            .parse()
            .map_err(|e| HarnessError::Io(format!("bad result line {line:?}: {e}")))?;
        out.push((key, val));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Equivalence rules
// ---------------------------------------------------------------------

/// Bit-for-bit equality with the PR 6 any-NaN rule.
pub fn bits_eq(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
}

/// Tolerant equality for reassociated / `float`-valued reductions: any
/// NaN matches any NaN, exact bits always match, otherwise the relative
/// error must be within `rel_tol` (absolute near zero).
pub fn approx_eq(a: f64, b: f64, rel_tol: f64) -> bool {
    if bits_eq(a, b) || (a.is_nan() && b.is_nan()) {
        return true;
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel_tol * scale
}

/// Compare a native map result against an oracle tier bit-for-bit.
/// `Err` carries the first mismatch, for diff reports.
pub fn compare_values(label: &str, native: &[f64], oracle: &[f64]) -> Result<(), String> {
    if native.len() != oracle.len() {
        return Err(format!(
            "{label}: length mismatch: native {} vs oracle {}",
            native.len(),
            oracle.len()
        ));
    }
    for (i, (n, o)) in native.iter().zip(oracle).enumerate() {
        if !bits_eq(*n, *o) {
            return Err(format!(
                "{label}: element {i}: native {n:?} ({:#018x}) != oracle {o:?} ({:#018x})",
                n.to_bits(),
                o.to_bits()
            ));
        }
    }
    Ok(())
}

/// Compare native MapReduce groups against an oracle, keys exact and
/// values within `rel_tol`. Both sides are sorted by key first (the
/// driver sorts with `strncmp`; the VM shuffle has its own order).
pub fn compare_pairs(
    label: &str,
    native: &[(String, f64)],
    oracle: &[(String, f64)],
    rel_tol: f64,
) -> Result<(), String> {
    let mut native = native.to_vec();
    let mut oracle = oracle.to_vec();
    native.sort_by(|a, b| a.0.cmp(&b.0));
    oracle.sort_by(|a, b| a.0.cmp(&b.0));
    if native.len() != oracle.len() {
        return Err(format!(
            "{label}: group count mismatch: native {} vs oracle {}",
            native.len(),
            oracle.len()
        ));
    }
    for ((nk, nv), (ok, ov)) in native.iter().zip(&oracle) {
        if nk != ok {
            return Err(format!(
                "{label}: key mismatch: native {nk:?} vs oracle {ok:?}"
            ));
        }
        if !approx_eq(*nv, *ov, rel_tol) {
            return Err(format!(
                "{label}: value mismatch for key {nk:?}: native {nv:?} vs oracle {ov:?} \
                 (rel tol {rel_tol:e})"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Interpreted oracle tiers (snap-ast only; the pooled tiers live in
// codegen_check, which can see snap-parallel)
// ---------------------------------------------------------------------

/// One map input evaluated by every interpreted tier.
#[derive(Debug, Clone)]
pub struct TierOutputs {
    /// Tree-walk evaluator (the semantics oracle).
    pub treewalk: Vec<f64>,
    /// Scalar bytecode (`PureFn::call`).
    pub bytecode: Vec<f64>,
    /// Columnar batch lanes (`eval_batch`), when the ring is batchable.
    pub batch: Option<Vec<f64>>,
}

/// Evaluate `ring` over `inputs` on the tree-walk, bytecode, and batch
/// tiers. The three must already agree with each other (PR 5/6 gates);
/// the native tier is compared against all of them.
pub fn oracle_map_tiers(ring: &Arc<Ring>, inputs: &[f64]) -> Result<TierOutputs, HarnessError> {
    let compiled = PureFn::compile(Arc::clone(ring))
        .map_err(|e| HarnessError::Io(format!("ring does not compile: {e:?}")))?;
    let mut treewalk = Vec::with_capacity(inputs.len());
    let mut bytecode = Vec::with_capacity(inputs.len());
    for &x in inputs {
        let args = [Value::Number(x)];
        let tw = compiled
            .call_treewalk(&args)
            .map_err(|e| HarnessError::Io(format!("tree-walk eval failed: {e:?}")))?;
        let bc = compiled
            .call(&args)
            .map_err(|e| HarnessError::Io(format!("bytecode eval failed: {e:?}")))?;
        treewalk.push(tw.to_number());
        bytecode.push(bc.to_number());
    }
    let mut lanes = Vec::new();
    let batch = compiled.eval_batch(inputs, &mut lanes).then_some(lanes);
    Ok(TierOutputs {
        treewalk,
        bytecode,
        batch,
    })
}

// ---------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------

/// What a registered scenario compiles and runs.
pub enum ScenarioKind {
    /// A fixed source with no inputs: compile, run, expect exit 0.
    Run {
        /// `main.c` text.
        source: String,
        /// Whether to compile with `-fopenmp` when available.
        openmp: bool,
    },
    /// A numeric map ring: native vs tree-walk/bytecode/batch,
    /// bit-for-bit.
    Map {
        /// The mapper ring.
        ring: Arc<Ring>,
    },
    /// A MapReduce pair: native vs the VM pipeline, keys exact, values
    /// within `rel_tol`.
    MapReduce {
        /// The mapper ring (`[key, value]` reporter).
        mapper: Box<Ring>,
        /// The reducer ring.
        reducer: Box<Ring>,
        /// Value tolerance (see [`MAPREDUCE_REL_TOL`]).
        rel_tol: f64,
    },
}

/// A named, runnable artifact derived from the paper's listings.
pub struct Scenario {
    /// Stable name (used for cache keys, artifacts, diff reports).
    pub name: &'static str,
    /// What to do.
    pub kind: ScenarioKind,
}

/// Every Listing-3–7 scenario plus the word_count and climate rings —
/// the registry `codegen_check` and the tests iterate.
pub fn scenarios() -> Vec<Scenario> {
    use snap_ast::builder::*;
    let fig5_x10 = Arc::new(Ring::reporter_with_params(
        vec!["n".into()],
        mul(var("n"), num(10.0)),
    ));
    let climate_f_to_c = Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
    ));
    vec![
        Scenario {
            name: "listing3_hello",
            kind: ScenarioKind::Run {
                source: crate::openmp::SEQUENTIAL_HELLO_RUNNABLE.to_owned(),
                openmp: false,
            },
        },
        Scenario {
            name: "listing4_omp_hello",
            kind: ScenarioKind::Run {
                source: crate::openmp::OPENMP_HELLO_RUNNABLE.to_owned(),
                openmp: true,
            },
        },
        Scenario {
            name: "listing5_map_example",
            kind: ScenarioKind::Run {
                source: crate::c_program::emit_listing5_runnable(),
                openmp: false,
            },
        },
        Scenario {
            name: "fig5_map_x10",
            kind: ScenarioKind::Map { ring: fig5_x10 },
        },
        Scenario {
            name: "climate_map_f_to_c",
            kind: ScenarioKind::Map {
                ring: climate_f_to_c,
            },
        },
        Scenario {
            name: "climate_mapreduce_avg",
            kind: ScenarioKind::MapReduce {
                mapper: Box::new(crate::openmp::climate_mapper()),
                reducer: Box::new(crate::openmp::averaging_reducer()),
                rel_tol: MAPREDUCE_REL_TOL,
            },
        },
        Scenario {
            name: "word_count_mapreduce",
            kind: ScenarioKind::MapReduce {
                mapper: Box::new(crate::openmp::word_count_mapper()),
                reducer: Box::new(crate::openmp::summing_reducer()),
                rel_tol: MAPREDUCE_REL_TOL,
            },
        },
    ]
}

/// Reference MapReduce semantics for the oracle side of the
/// [`ScenarioKind::MapReduce`] comparison, computed in f64 (group by
/// mapped key, then Sum / Count / Average per group).
pub fn reference_mapreduce(
    mapper: &Ring,
    reducer: &Ring,
    pairs: &[(String, f64)],
) -> Result<Vec<(String, f64)>, HarnessError> {
    let spec = crate::openmp::recognize(mapper, reducer)
        .map_err(|e| HarnessError::Io(format!("unrecognized mapreduce: {e}")))?;
    let mapped = PureFn::compile(Arc::new(mapper.clone()))
        .map_err(|e| HarnessError::Io(format!("mapper does not compile: {e:?}")))?;
    let mut groups: HashMap<String, Vec<f64>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for (key, val) in pairs {
        // The recognized mappers are unary: word count's `[w, 1]` takes
        // the input key, the climate averager's `["avg", f(t)]` takes
        // the input value — mirror the KVP the C `map` would see.
        let arg = match &spec.key {
            crate::openmp::KeySource::FromInput => Value::Text(key.clone()),
            crate::openmp::KeySource::Constant(_) => Value::Number(*val),
        };
        let out = mapped
            .call(&[arg])
            .map_err(|e| HarnessError::Io(format!("mapper eval failed: {e:?}")))?;
        let Some(list) = out.as_list() else {
            return Err(HarnessError::Io("mapper did not report a pair".into()));
        };
        let items = list.to_vec();
        if items.len() != 2 {
            return Err(HarnessError::Io("mapper did not report a pair".into()));
        }
        let out_key = match &items[0] {
            Value::Text(s) => s.clone(),
            Value::Number(n) => Value::format_number(*n),
            other => format!("{other:?}"),
        };
        let out_val = items[1].to_number();
        groups.entry(out_key.clone()).or_insert_with(|| {
            order.push(out_key.clone());
            Vec::new()
        });
        groups
            .get_mut(&out_key)
            .expect("just inserted")
            .push(out_val);
    }
    let mut result = Vec::with_capacity(order.len());
    for key in order {
        let vals = &groups[&key];
        let sum: f64 = vals.iter().sum();
        let reduced = match spec.reducer {
            crate::openmp::ReducerKind::Sum => sum,
            crate::openmp::ReducerKind::Count => vals.len() as f64,
            crate::openmp::ReducerKind::Average => sum / vals.len() as f64,
        };
        result.push((key, reduced));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"int main"), fnv1a(b"int mair"));
    }

    #[test]
    fn protocol_round_trips_ieee_specials() {
        let specials = [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE, // smallest normal
            5e-324,            // smallest subnormal
            -5e-324,
            f64::MAX,
            f64::EPSILON,
            1.0 / 3.0,
        ];
        let encoded = encode_values(&specials);
        let decoded = decode_values(&encoded).unwrap();
        assert_eq!(decoded.len(), specials.len());
        for (a, b) in specials.iter().zip(&decoded) {
            assert!(bits_eq(*a, *b), "{a:?} != {b:?}");
        }
        // NaN round-trips under the any-NaN rule.
        let nans = decode_values(&encode_values(&[f64::NAN])).unwrap();
        assert!(nans[0].is_nan());
    }

    #[test]
    fn pair_protocol_survives_commas_in_keys() {
        let pairs = vec![("a,b".to_owned(), 1.5), ("plain".to_owned(), -2.0)];
        let text = encode_pairs(&pairs);
        assert_eq!(text, "a,b,1.5e0\nplain,-2e0\n");
    }

    #[test]
    fn nan_rule_and_tolerance() {
        assert!(bits_eq(f64::NAN, -f64::NAN));
        assert!(!bits_eq(0.0, -0.0) || 0.0_f64.to_bits() == (-0.0_f64).to_bits());
        assert!(approx_eq(100.0, 100.0 + 100.0 * 1e-5, MAPREDUCE_REL_TOL));
        assert!(!approx_eq(100.0, 101.0, MAPREDUCE_REL_TOL));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, MAPREDUCE_REL_TOL));
        assert!(!approx_eq(f64::INFINITY, 1.0, MAPREDUCE_REL_TOL));
    }

    #[test]
    fn compare_values_reports_first_mismatch() {
        let err = compare_values("t", &[1.0, 2.0], &[1.0, 3.0]).unwrap_err();
        assert!(err.contains("element 1"), "{err}");
        assert!(compare_values("t", &[f64::NAN], &[-f64::NAN]).is_ok());
    }

    #[test]
    fn oracle_tiers_agree_on_the_climate_ring() {
        use snap_ast::builder::*;
        let ring = Arc::new(Ring::reporter_with_params(
            vec!["t".into()],
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ));
        let inputs = [32.0, 212.0, -40.0, 98.6];
        let tiers = oracle_map_tiers(&ring, &inputs).unwrap();
        assert_eq!(tiers.treewalk, tiers.bytecode);
        let batch = tiers.batch.expect("climate ring is batchable");
        assert_eq!(tiers.treewalk, batch);
        assert_eq!(tiers.treewalk[0], 0.0);
        assert_eq!(tiers.treewalk[1], 100.0);
    }

    #[test]
    fn reference_mapreduce_groups_and_averages() {
        let pairs = vec![("s1".to_owned(), 32.0), ("s2".to_owned(), 212.0)];
        let out = reference_mapreduce(
            &crate::openmp::climate_mapper(),
            &crate::openmp::averaging_reducer(),
            &pairs,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, "avg");
        assert!((out[0].1 - 50.0).abs() < 1e-12);
    }

    #[test]
    fn scenario_registry_covers_the_listings() {
        let names: Vec<_> = scenarios().iter().map(|s| s.name).collect();
        for expected in [
            "listing3_hello",
            "listing4_omp_hello",
            "listing5_map_example",
            "fig5_map_x10",
            "climate_map_f_to_c",
            "climate_mapreduce_avg",
            "word_count_mapreduce",
        ] {
            assert!(names.contains(&expected), "missing scenario {expected}");
        }
    }

    #[test]
    fn toolchain_probe_is_consistent() {
        // Whatever the host has, the probe must be stable across calls
        // (OnceLock) and the harness must agree with it.
        let first = detect_toolchain().map(|t| t.cc.clone());
        let second = detect_toolchain().map(|t| t.cc.clone());
        assert_eq!(first, second);
        match (first, Harness::detect()) {
            (Some(cc), Ok(h)) => assert_eq!(h.toolchain().cc, cc),
            (None, Err(HarnessError::ToolchainMissing)) => {}
            (probe, harness) => {
                panic!("probe {probe:?} and harness {harness:?} disagree")
            }
        }
    }
}
