//! Block→code mapping tables.
//!
//! Snap!'s experimental code-mapping feature is driven by user-editable
//! "map \<block\> to \<code\>" definitions (paper §6.2, Fig. 15). A
//! [`CodeMapping`] is one such table: template text per block, keyed by
//! the block's name. Presets exist for C, JavaScript and Python —
//! "currently, mappings exist for JavaScript, C, Smalltalk, and Python.
//! Code mappings for new textual languages can easily be specified by
//! the user" — and [`CodeMapping::set`] is exactly that user extension
//! point.

use std::collections::HashMap;

use crate::template::Template;

/// Target language of a mapping table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Plain C (the paper's Listing 5).
    C,
    /// JavaScript (with Parallel.js for the parallel blocks).
    JavaScript,
    /// Python.
    Python,
    /// Smalltalk (the language Scratch was originally written in; the
    /// paper lists it among the existing mappings).
    Smalltalk,
}

impl Target {
    /// Human-readable name, as it appears on the `map to <language>`
    /// block.
    pub fn name(&self) -> &'static str {
        match self {
            Target::C => "C",
            Target::JavaScript => "JavaScript",
            Target::Python => "Python",
            Target::Smalltalk => "Smalltalk",
        }
    }
}

/// A per-language block→template table.
#[derive(Debug, Clone)]
pub struct CodeMapping {
    /// The language this table targets.
    pub target: Target,
    templates: HashMap<String, Template>,
}

impl CodeMapping {
    /// An empty mapping for a target (blocks must be `set` explicitly).
    pub fn empty(target: Target) -> CodeMapping {
        CodeMapping {
            target,
            templates: HashMap::new(),
        }
    }

    /// The preset mapping for a target — the equivalent of executing the
    /// stack of "map … to …" blocks in the paper's Fig. 15.
    pub fn preset(target: Target) -> CodeMapping {
        let mut m = CodeMapping::empty(target);
        match target {
            Target::C => m.install_c(),
            Target::JavaScript => m.install_js(),
            Target::Python => m.install_py(),
            Target::Smalltalk => m.install_st(),
        }
        m
    }

    /// The "map \<block\> to \<code\>" block: (re)define one template.
    pub fn set(&mut self, block: impl Into<String>, template: impl Into<String>) {
        self.templates.insert(block.into(), Template::new(template));
    }

    /// Look up a block's template.
    pub fn get(&self, block: &str) -> Option<&Template> {
        self.templates.get(block)
    }

    /// Number of mapped blocks.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// `true` when no blocks are mapped.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    fn install_common_operators(&mut self, pow: &str, and: &str, or: &str, not: &str) {
        self.set("add", "(<#1> + <#2>)");
        self.set("sub", "(<#1> - <#2>)");
        self.set("mul", "(<#1> * <#2>)");
        self.set("div", "(<#1> / <#2>)");
        self.set("mod", "(<#1> % <#2>)");
        self.set("pow", pow);
        self.set("eq", "(<#1> == <#2>)");
        self.set("ne", "(<#1> != <#2>)");
        self.set("lt", "(<#1> < <#2>)");
        self.set("gt", "(<#1> > <#2>)");
        self.set("le", "(<#1> <= <#2>)");
        self.set("ge", "(<#1> >= <#2>)");
        self.set("and", and);
        self.set("or", or);
        self.set("not", not);
        self.set("neg", "(-<#1>)");
    }

    fn install_c(&mut self) {
        self.install_common_operators(
            "pow(<#1>, <#2>)",
            "(<#1> && <#2>)",
            "(<#1> || <#2>)",
            "(!<#1>)",
        );
        self.set("abs", "fabs(<#1>)");
        self.set("sqrt", "sqrt(<#1>)");
        self.set("round", "round(<#1>)");
        self.set("floor", "floor(<#1>)");
        self.set("ceil", "ceil(<#1>)");
        self.set("say", "printf(\"%g\\n\", (double)(<#1>));");
        self.set("say_text", "printf(\"%s\\n\", <#1>);");
        self.set("setvar", "<#1> = <#2>;");
        self.set("declvar", "<#1> <#2> = <#3>;");
        self.set("changevar", "<#1> += <#2>;");
        self.set("if", "if (<#1>) {\n    <#2>\n}");
        self.set("ifelse", "if (<#1>) {\n    <#2>\n} else {\n    <#3>\n}");
        self.set(
            "repeat",
            "for (int <#3> = 0; <#3> < <#1>; <#3>++) {\n    <#2>\n}",
        );
        self.set(
            "for",
            "int <#1>; for (<#1> = <#2>; <#1> <= <#3>; <#1>++){\n    <#4>\n}",
        );
        self.set("repeatuntil", "while (!(<#1>)) {\n    <#2>\n}");
        self.set("lengthof", "(sizeof(<#1>)/sizeof(<#1>[0]))");
        self.set("item", "<#2>[<#1> - 1]");
        self.set("addtolist", "append(<#1>, <#2>);");
        self.set("report", "return (<#1>);");
        self.set("comment", "/* <#1> */");
    }

    fn install_js(&mut self) {
        self.install_common_operators(
            "(<#1> ** <#2>)",
            "(<#1> && <#2>)",
            "(<#1> || <#2>)",
            "(!<#1>)",
        );
        self.set("abs", "Math.abs(<#1>)");
        self.set("sqrt", "Math.sqrt(<#1>)");
        self.set("round", "Math.round(<#1>)");
        self.set("floor", "Math.floor(<#1>)");
        self.set("ceil", "Math.ceil(<#1>)");
        self.set("say", "console.log(<#1>);");
        self.set("say_text", "console.log(<#1>);");
        self.set("setvar", "<#1> = <#2>;");
        self.set("declvar", "let <#2> = <#3>;");
        self.set("changevar", "<#1> += <#2>;");
        self.set("if", "if (<#1>) {\n    <#2>\n}");
        self.set("ifelse", "if (<#1>) {\n    <#2>\n} else {\n    <#3>\n}");
        self.set(
            "repeat",
            "for (let <#3> = 0; <#3> < <#1>; <#3>++) {\n    <#2>\n}",
        );
        self.set(
            "for",
            "for (let <#1> = <#2>; <#1> <= <#3>; <#1>++) {\n    <#4>\n}",
        );
        self.set("repeatuntil", "while (!(<#1>)) {\n    <#2>\n}");
        self.set("foreach", "for (const <#1> of <#2>) {\n    <#3>\n}");
        self.set("makelist", "[<#1>]");
        self.set("lengthof", "(<#1>).length");
        self.set("item", "<#2>[<#1> - 1]");
        self.set("addtolist", "<#2>.push(<#1>);");
        self.set("join", "String(<#1>) + String(<#2>)");
        self.set("map", "(<#2>).map((__x) => (<#1>))");
        // The paper's own runtime: Parallel.js (Listing 1).
        self.set(
            "parallelmap",
            "new Parallel(<#2>, {maxWorkers: <#3>}).map(function (__x) { return (<#1>); }).data",
        );
        self.set("report", "return (<#1>);");
        self.set("comment", "// <#1>");
    }

    fn install_st(&mut self) {
        self.set("add", "(<#1> + <#2>)");
        self.set("sub", "(<#1> - <#2>)");
        self.set("mul", "(<#1> * <#2>)");
        self.set("div", "(<#1> / <#2>)");
        self.set("mod", "(<#1> \\\\ <#2>)");
        self.set("pow", "(<#1> raisedTo: <#2>)");
        self.set("eq", "(<#1> = <#2>)");
        self.set("ne", "(<#1> ~= <#2>)");
        self.set("lt", "(<#1> < <#2>)");
        self.set("gt", "(<#1> > <#2>)");
        self.set("le", "(<#1> <= <#2>)");
        self.set("ge", "(<#1> >= <#2>)");
        self.set("and", "(<#1> and: [<#2>])");
        self.set("or", "(<#1> or: [<#2>])");
        self.set("not", "(<#1>) not");
        self.set("neg", "(<#1>) negated");
        self.set("abs", "(<#1>) abs");
        self.set("sqrt", "(<#1>) sqrt");
        self.set("round", "(<#1>) rounded");
        self.set("floor", "(<#1>) floor");
        self.set("ceil", "(<#1>) ceiling");
        self.set("say", "Transcript showln: (<#1>) printString.");
        self.set("say_text", "Transcript showln: <#1>.");
        self.set("setvar", "<#1> := <#2>.");
        self.set("changevar", "<#1> := <#1> + <#2>.");
        self.set("if", "(<#1>) ifTrue: [\n    <#2>\n].");
        self.set(
            "ifelse",
            "(<#1>)\n    ifTrue: [\n    <#2>\n]\n    ifFalse: [\n    <#3>\n].",
        );
        self.set("repeat", "(<#1>) timesRepeat: [\n    <#2>\n].");
        self.set("for", "<#2> to: <#3> do: [:<#1> |\n    <#4>\n].");
        self.set("repeatuntil", "[<#1>] whileFalse: [\n    <#2>\n].");
        self.set("foreach", "(<#2>) do: [:<#1> |\n    <#3>\n].");
        self.set("makelist", "(OrderedCollection withAll: {<#1>})");
        self.set("lengthof", "(<#1>) size");
        self.set("item", "(<#2>) at: <#1>");
        self.set("addtolist", "(<#2>) add: <#1>.");
        self.set("join", "(<#1>) asString , (<#2>) asString");
        self.set("map", "(<#2>) collect: [:__x | <#1>]");
        self.set("report", "^ <#1>");
        self.set("comment", "\"<#1>\"");
    }

    fn install_py(&mut self) {
        self.install_common_operators(
            "(<#1> ** <#2>)",
            "(<#1> and <#2>)",
            "(<#1> or <#2>)",
            "(not <#1>)",
        );
        self.set("abs", "abs(<#1>)");
        self.set("sqrt", "math.sqrt(<#1>)");
        self.set("round", "round(<#1>)");
        self.set("floor", "math.floor(<#1>)");
        self.set("ceil", "math.ceil(<#1>)");
        self.set("say", "print(<#1>)");
        self.set("say_text", "print(<#1>)");
        self.set("setvar", "<#1> = <#2>");
        self.set("declvar", "<#2> = <#3>");
        self.set("changevar", "<#1> += <#2>");
        self.set("if", "if <#1>:\n    <#2>");
        self.set("ifelse", "if <#1>:\n    <#2>\nelse:\n    <#3>");
        self.set("repeat", "for <#3> in range(<#1>):\n    <#2>");
        self.set("for", "for <#1> in range(<#2>, <#3> + 1):\n    <#4>");
        self.set("repeatuntil", "while not (<#1>):\n    <#2>");
        self.set("foreach", "for <#1> in <#2>:\n    <#3>");
        self.set("makelist", "[<#1>]");
        self.set("lengthof", "len(<#1>)");
        self.set("item", "<#2>[<#1> - 1]");
        self.set("addtolist", "<#2>.append(<#1>)");
        self.set("join", "str(<#1>) + str(<#2>)");
        self.set("map", "[(<#1>) for __x in <#2>]");
        self.set("parallelmap", "Pool(<#3>).map(lambda __x: (<#1>), <#2>)");
        self.set("report", "return (<#1>)");
        self.set("comment", "# <#1>");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_nonempty_for_all_targets() {
        for target in [
            Target::C,
            Target::JavaScript,
            Target::Python,
            Target::Smalltalk,
        ] {
            let m = CodeMapping::preset(target);
            assert!(!m.is_empty());
            assert!(m.get("add").is_some(), "{:?} lacks add", target);
        }
    }

    #[test]
    fn user_can_remap_a_block() {
        let mut m = CodeMapping::preset(Target::C);
        m.set("say", "puts(<#1>);");
        assert_eq!(m.get("say").unwrap().text(), "puts(<#1>);");
    }

    #[test]
    fn operator_templates_fill() {
        let m = CodeMapping::preset(Target::C);
        let s = m
            .get("mul")
            .unwrap()
            .fill(&["a[i - 1]".into(), "10".into()]);
        assert_eq!(s, "(a[i - 1] * 10)");
    }

    #[test]
    fn smalltalk_uses_keyword_messages() {
        let m = CodeMapping::preset(Target::Smalltalk);
        let code = m.get("for").unwrap().fill(&[
            "i".into(),
            "1".into(),
            "10".into(),
            "Transcript showln: i printString.".into(),
        ]);
        assert!(code.starts_with("1 to: 10 do: [:i |"));
    }

    #[test]
    fn python_uses_indentation_templates() {
        let m = CodeMapping::preset(Target::Python);
        assert!(m.get("if").unwrap().text().contains(':'));
    }
}
