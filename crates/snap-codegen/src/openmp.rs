//! OpenMP emission — the paper's §6: Listings 3–4 (hello world), 6
//! (generated map/reduce functions), 7 (the driver), and `kvp.h`.
//!
//! The MapReduce emitter splices the user's mapper and reducer rings
//! into a fixed OpenMP skeleton, exactly as the paper describes: "those
//! details are provided in the mapping from map-reduce to OpenMP code by
//! the programmer implementing the map-reduce block, i.e., us" (§6.2.1).
//!
//! One deliberate correction: the paper's Listing 6 declares
//! `int reduce(KVP *in, KVP *out)` yet calls `avg(in->val)` where `avg`
//! takes an array — not compilable as printed. We generate the grouped
//! form `int reduce(const KVP *in, size_t count, KVP *out)` so the
//! emitted program compiles and runs; the driver keeps Listing 7's
//! structure (map pragma → qsort on keys → reduce pragma → output).

use snap_ast::{BinOp, Expr, Ring, RingBody, RingExprBody};

use crate::gen::{CodegenError, Generator};
use crate::mapping::{CodeMapping, Target};

/// Listing 3: the sequential hello-world program.
pub const LISTING3_SEQUENTIAL_HELLO: &str = r#"void main() {
    int ID = 0;
    printf(" hello(%d), ", ID);
    printf(" world(%d) \n", ID);
}
"#;

/// Listing 4: the OpenMP hello-world program — "by adding a simple
/// directive (or pragma) and a function call to obtain the thread ID".
pub const LISTING4_OPENMP_HELLO: &str = r#"#include "omp.h"
void main() {
    #pragma omp parallel
    {
        int ID = omp_get_thread_num();
        printf(" hello(%d), ", ID);
        printf(" world(%d) \n", ID);
    }
}
"#;

/// A compilable variant of Listing 3 (standard `int main`, stdio
/// included) so the sequential hello is a runnable harness scenario.
pub const SEQUENTIAL_HELLO_RUNNABLE: &str = r#"#include <stdio.h>
int main(void) {
    int ID = 0;
    printf(" hello(%d), ", ID);
    printf(" world(%d) \n", ID);
    return 0;
}
"#;

/// A compilable variant of Listing 4 (standard `int main`, stdio
/// included) used by the build pipeline's smoke test and the harness.
/// Portable: without `-fopenmp` there is no `omp.h` and no `_OPENMP`,
/// so a static single-thread stand-in keeps the program runnable.
pub const OPENMP_HELLO_RUNNABLE: &str = r#"#include <stdio.h>
#ifdef _OPENMP
#include <omp.h>
#else
static int omp_get_thread_num(void) { return 0; }
#endif
int main(void) {
    #pragma omp parallel
    {
        int ID = omp_get_thread_num();
        printf(" hello(%d), ", ID);
        printf(" world(%d) \n", ID);
    }
    return 0;
}
"#;

/// The `kvp.h` header every generated MapReduce program includes.
pub const KVP_H: &str = r#"#ifndef KVP_H
#define KVP_H

#include <stddef.h>

#define MAXKEY 64

typedef struct KVP {
    char key[MAXKEY];
    float val;
} KVP;

int compare(const void *a, const void *b);
int input(int *nkvp, KVP **list);
int output(int nkvp, KVP *list);
int map(const KVP *in, KVP *out);
int reduce(const KVP *in, size_t count, KVP *out);

#endif
"#;

/// Where the mapper's output key comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySource {
    /// The mapper passes the input key through (`[w, 1]` word count).
    FromInput,
    /// The mapper emits one constant key (`["avg", …]` climate example).
    Constant(String),
}

/// The reduction the reducer ring performs, recognized from its AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducerKind {
    /// `combine vals using (+) / length of vals` — Fig. 20's averager.
    Average,
    /// `combine vals using (+)` — word count's summer.
    Sum,
    /// `length of vals`.
    Count,
}

/// A recognized MapReduce program, ready to emit.
#[derive(Debug, Clone)]
pub struct MapReduceSpec {
    /// Key handling in the generated `map`.
    pub key: KeySource,
    /// C expression for the mapped value, in terms of `in->val`.
    pub value_expr: String,
    /// The reduction.
    pub reducer: ReducerKind,
}

/// Extract a [`MapReduceSpec`] from mapper/reducer rings. The mapper
/// must report a `[key, value]` pair; the reducer must be one of the
/// recognizable reductions.
pub fn recognize(mapper: &Ring, reducer: &Ring) -> Result<MapReduceSpec, CodegenError> {
    let key_value = mapper_body(mapper)?;
    let (key_expr, value_expr_ast) = key_value;
    let param = mapper.params.first().cloned();

    let key = match key_expr {
        Expr::Var(name) if param.as_deref() == Some(name.as_str()) => KeySource::FromInput,
        Expr::EmptySlot => KeySource::FromInput,
        Expr::Literal(snap_ast::Constant::Text(s)) => KeySource::Constant(s.clone()),
        other => {
            return Err(CodegenError {
                message: format!("unsupported mapper key expression: {other:?}"),
            })
        }
    };

    let mapping = CodeMapping::preset(Target::C);
    let mut gen = Generator::new(&mapping);
    gen.slot_name = Some("in->val".to_owned());
    if let Some(p) = &param {
        gen.subst.insert(p.clone(), "in->val".to_owned());
    }
    let value_expr = gen.expr(value_expr_ast)?;

    let reducer_kind = recognize_reducer(reducer)?;
    Ok(MapReduceSpec {
        key,
        value_expr,
        reducer: reducer_kind,
    })
}

/// The mapper body must be `list <key> <value>`.
fn mapper_body(mapper: &Ring) -> Result<(&Expr, &Expr), CodegenError> {
    let body = reporter_body(mapper, "mapper")?;
    match body {
        Expr::MakeList(items) if items.len() == 2 => Ok((&items[0], &items[1])),
        other => Err(CodegenError {
            message: format!("mapper must report a [key, value] pair, got {other:?}"),
        }),
    }
}

fn reporter_body<'r>(ring: &'r Ring, role: &str) -> Result<&'r Expr, CodegenError> {
    match &ring.body {
        RingBody::Reporter(e) | RingBody::Predicate(e) => Ok(e),
        RingBody::Command(_) => Err(CodegenError {
            message: format!("{role} must be a reporter ring"),
        }),
    }
}

/// Recognize the reducer's AST pattern.
pub fn recognize_reducer(reducer: &Ring) -> Result<ReducerKind, CodegenError> {
    let param = reducer.params.first().map(String::as_str);
    let body = reporter_body(reducer, "reducer")?;
    if let Some(kind) = match_reducer(body, param) {
        Ok(kind)
    } else {
        Err(CodegenError {
            message: "unsupported reducer: expected sum, count, or average of the value list"
                .to_owned(),
        })
    }
}

fn match_reducer(body: &Expr, param: Option<&str>) -> Option<ReducerKind> {
    if is_combine_sum(body, param) {
        return Some(ReducerKind::Sum);
    }
    match body {
        Expr::LengthOf(list) if is_param(list, param) => Some(ReducerKind::Count),
        Expr::Binary(BinOp::Div, a, b) => {
            let numerator_is_sum = is_combine_sum(a, param);
            let denominator_is_len = matches!(&**b, Expr::LengthOf(l) if is_param(l, param));
            (numerator_is_sum && denominator_is_len).then_some(ReducerKind::Average)
        }
        _ => None,
    }
}

fn is_param(e: &Expr, param: Option<&str>) -> bool {
    match e {
        Expr::Var(name) => param == Some(name.as_str()),
        Expr::EmptySlot => true,
        _ => false,
    }
}

fn is_combine_sum(e: &Expr, param: Option<&str>) -> bool {
    let Expr::Combine { list, ring } = e else {
        return false;
    };
    if !is_param(list, param) {
        return false;
    }
    let Expr::Ring(ring_expr) = &**ring else {
        return false;
    };
    match &ring_expr.body {
        RingExprBody::Reporter(body) => {
            matches!(&**body, Expr::Binary(BinOp::Add, _, _))
        }
        _ => false,
    }
}

/// The generated program files.
#[derive(Debug, Clone)]
pub struct OpenMpProgram {
    /// `kvp.h`.
    pub kvp_h: String,
    /// `mapred.c` — the Listing 6 analogue (map + reduce + helper).
    pub mapred_c: String,
    /// `driver.c` — the Listing 7 analogue (main + input/output/compare).
    pub driver_c: String,
}

/// Emit a complete OpenMP MapReduce program for recognized rings and an
/// embedded dataset (the stand-in for the paper's NOAA data files —
/// §6.3 lists file ingestion as future work).
pub fn emit_mapreduce_openmp(
    mapper: &Ring,
    reducer: &Ring,
    dataset: &[(String, f64)],
) -> Result<OpenMpProgram, CodegenError> {
    let spec = recognize(mapper, reducer)?;
    Ok(OpenMpProgram {
        kvp_h: KVP_H.to_owned(),
        mapred_c: emit_mapred_c(&spec),
        driver_c: emit_driver_c(dataset),
    })
}

fn emit_mapred_c(spec: &MapReduceSpec) -> String {
    let mut out = String::new();
    out.push_str("#include <math.h>\n#include <string.h>\n#include \"kvp.h\"\n\n");

    match spec.reducer {
        ReducerKind::Average => out.push_str(
            "float avg(const KVP *a, size_t count) {\n    float sum = 0.0f;\n    for (size_t i = 0; i < count; i++)\n        sum += a[i].val;\n    return sum / (float) count;\n}\n\n",
        ),
        ReducerKind::Sum => out.push_str(
            "float sum(const KVP *a, size_t count) {\n    float s = 0.0f;\n    for (size_t i = 0; i < count; i++)\n        s += a[i].val;\n    return s;\n}\n\n",
        ),
        ReducerKind::Count => {}
    }

    out.push_str("int map (const KVP *in, KVP *out) {\n");
    match &spec.key {
        // memcpy the whole fixed-size key buffer: `in->key` is always a
        // NUL-terminated char[MAXKEY], and a bounded strncpy here trips
        // GCC's -Wstringop-truncation under -Wall -Werror.
        KeySource::FromInput => {
            out.push_str("    memcpy (out->key, in->key, MAXKEY);\n");
        }
        KeySource::Constant(k) => {
            out.push_str(&format!(
                "    strncpy (out->key, {k:?}, MAXKEY - 1);\n    out->key[MAXKEY - 1] = '\\0';\n"
            ));
        }
    }
    out.push_str(&format!(
        "    out->val = {};\n    return 0;\n}}\n\n",
        spec.value_expr
    ));

    out.push_str("int reduce (const KVP *in, size_t count, KVP *out) {\n");
    out.push_str("    memcpy (out->key, in->key, MAXKEY);\n");
    match spec.reducer {
        ReducerKind::Average => out.push_str("    out->val = avg(in, count);\n"),
        ReducerKind::Sum => out.push_str("    out->val = sum(in, count);\n"),
        ReducerKind::Count => out.push_str("    out->val = (float) count;\n"),
    }
    out.push_str("    return 0;\n}\n");
    out
}

fn emit_driver_c(dataset: &[(String, f64)]) -> String {
    let mut data_rows = String::new();
    for (key, val) in dataset {
        data_rows.push_str(&format!("    {{{key:?}, {val:?}f}},\n"));
    }

    format!(
        r#"/* OpenMP driver for Parallel Snap! MapReduce code output. */
#ifdef _OPENMP
#include <omp.h>
#endif
#include <stdlib.h>
#include <string.h>
#include <stdio.h>
#include "kvp.h"

static const KVP dataset[] = {{
{data_rows}}};

int input(int *nkvp, KVP **list) {{
    *nkvp = (int)(sizeof(dataset) / sizeof(dataset[0]));
    *list = malloc((size_t)*nkvp * sizeof(KVP));
    if (*list == NULL) return 1;
    memcpy(*list, dataset, (size_t)*nkvp * sizeof(KVP));
    return 0;
}}

int output(int nkvp, KVP *list) {{
    for (int i = 0; i < nkvp; i++) {{
        printf("%s %g\n", list[i].key, (double) list[i].val);
    }}
    return 0;
}}

int compare(const void *a, const void *b) {{
    return strncmp(((const KVP *) a)->key, ((const KVP *) b)->key, MAXKEY);
}}

int main(int argc, char *argv[]) {{
    int nkvp;
    KVP *inputlist, *midlist, *outputlist;

    (void) argc;
    (void) argv;
    if (input(&nkvp, &inputlist) != 0) {{
        return 1;
    }}
    midlist = malloc((size_t) nkvp * sizeof(KVP));

    /* Run mapper */
    #pragma omp parallel for shared(nkvp, inputlist, midlist)
    for (int i = 0; i < nkvp; i++) {{
        map(&inputlist[i], &midlist[i]);
    }}

    /* Sort on keys */
    qsort(midlist, (size_t) nkvp, sizeof(KVP), compare);
    outputlist = malloc((size_t) nkvp * sizeof(KVP));

    /* Find key-group boundaries */
    int ngroups = 0;
    int *starts = malloc(((size_t) nkvp + 1) * sizeof(int));
    for (int i = 0; i < nkvp; i++) {{
        if (i == 0 || strncmp(midlist[i].key, midlist[i - 1].key, MAXKEY) != 0) {{
            starts[ngroups++] = i;
        }}
    }}
    starts[ngroups] = nkvp;

    /* Run reducer */
    #pragma omp parallel for shared(ngroups, starts, midlist, outputlist)
    for (int g = 0; g < ngroups; g++) {{
        reduce(&midlist[starts[g]],
               (size_t)(starts[g + 1] - starts[g]),
               &outputlist[g]);
    }}

    if (output(ngroups, outputlist) != 0) {{
        exit(1);
    }}

    free(starts);
    free(inputlist);
    free(midlist);
    free(outputlist);

    return 0;
}}
"#
    )
}

/// Emit a MapReduce program whose driver reads the dataset from stdin
/// as `key,value` CSV lines (split on the *last* comma, so keys with
/// commas survive) and prints `key value` result lines — the harness
/// protocol. Because the dataset is no longer embedded in the source,
/// the compile cache reuses one binary across dataset changes.
pub fn emit_mapreduce_openmp_protocol(
    mapper: &Ring,
    reducer: &Ring,
) -> Result<OpenMpProgram, CodegenError> {
    let spec = recognize(mapper, reducer)?;
    Ok(OpenMpProgram {
        kvp_h: KVP_H.to_owned(),
        mapred_c: emit_mapred_c(&spec),
        driver_c: PROTOCOL_DRIVER_C.to_owned(),
    })
}

/// The stdin-protocol Listing 7 driver (see
/// [`emit_mapreduce_openmp_protocol`]).
pub const PROTOCOL_DRIVER_C: &str = r#"/* OpenMP driver for Parallel Snap! MapReduce code output.
   Protocol variant: the dataset arrives on stdin as `key,value` lines
   (split on the last comma); results leave as `key value` lines.
   `--serve` switches to the persistent binary frame loop: each request
   is [u64 npairs] then npairs of [u32 klen][klen key bytes][f64 val]
   in native endianness; the response uses the same framing for the
   reduced groups. One frame is one complete MapReduce job. A count of
   UINT64_MAX is the poison frame: the worker exits abruptly. */
#ifdef _OPENMP
#include <omp.h>
#endif
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <stdio.h>
#include "kvp.h"

int input(int *nkvp, KVP **list) {
    size_t cap = 1024;
    size_t n = 0;
    char line[512];
    KVP *kvps = malloc(cap * sizeof(KVP));
    if (kvps == NULL) return 1;
    while (fgets(line, sizeof line, stdin) != NULL) {
        char *nl = strchr(line, '\n');
        char *comma;
        size_t klen;
        if (nl != NULL) *nl = '\0';
        if (line[0] == '\0') continue;
        comma = strrchr(line, ',');
        if (comma == NULL) { free(kvps); return 1; }
        *comma = '\0';
        if (n == cap) {
            KVP *grown;
            cap *= 2;
            grown = realloc(kvps, cap * sizeof(KVP));
            if (grown == NULL) { free(kvps); return 1; }
            kvps = grown;
        }
        klen = strlen(line);
        if (klen > MAXKEY - 1) klen = MAXKEY - 1;
        memcpy(kvps[n].key, line, klen);
        kvps[n].key[klen] = '\0';
        kvps[n].val = (float) strtod(comma + 1, NULL);
        n++;
    }
    *nkvp = (int) n;
    *list = kvps;
    return 0;
}

int output(int nkvp, KVP *list) {
    int i;
    for (i = 0; i < nkvp; i++) {
        printf("%s %.17g\n", list[i].key, (double) list[i].val);
    }
    return 0;
}

int compare(const void *a, const void *b) {
    return strncmp(((const KVP *) a)->key, ((const KVP *) b)->key, MAXKEY);
}

/* One complete MapReduce job: map -> qsort on keys -> grouped reduce.
   The caller owns inputlist; on success *outputp (malloc'd) holds
   *ngroupsp reduced KVPs. */
static int run_batch(KVP *inputlist, int nkvp, KVP **outputp, int *ngroupsp) {
    KVP *midlist, *outputlist;
    int ngroups;
    int *starts;
    int i;
    int g;

    midlist = malloc((size_t) (nkvp > 0 ? nkvp : 1) * sizeof(KVP));
    if (midlist == NULL) return 1;

    /* Run mapper */
    #pragma omp parallel for shared(nkvp, inputlist, midlist)
    for (i = 0; i < nkvp; i++) {
        map(&inputlist[i], &midlist[i]);
    }

    /* Sort on keys */
    qsort(midlist, (size_t) nkvp, sizeof(KVP), compare);
    outputlist = malloc((size_t) (nkvp > 0 ? nkvp : 1) * sizeof(KVP));
    if (outputlist == NULL) { free(midlist); return 1; }

    /* Find key-group boundaries */
    ngroups = 0;
    starts = malloc(((size_t) nkvp + 1) * sizeof(int));
    if (starts == NULL) { free(midlist); free(outputlist); return 1; }
    for (i = 0; i < nkvp; i++) {
        if (i == 0 || strncmp(midlist[i].key, midlist[i - 1].key, MAXKEY) != 0) {
            starts[ngroups++] = i;
        }
    }
    starts[ngroups] = nkvp;

    /* Run reducer */
    #pragma omp parallel for shared(ngroups, starts, midlist, outputlist)
    for (g = 0; g < ngroups; g++) {
        reduce(&midlist[starts[g]],
               (size_t)(starts[g + 1] - starts[g]),
               &outputlist[g]);
    }

    free(starts);
    free(midlist);
    *outputp = outputlist;
    *ngroupsp = ngroups;
    return 0;
}

/* Read one [u32 klen][key bytes][f64 val] record; keys longer than
   MAXKEY-1 are truncated (matching the line protocol's behaviour) but
   the full klen bytes are always consumed. */
static int read_kvp(KVP *kvp) {
    uint32_t klen;
    uint32_t keep;
    uint32_t skip;
    double val;
    if (fread(&klen, sizeof klen, 1, stdin) != 1) return 1;
    keep = klen < MAXKEY ? klen : (MAXKEY - 1);
    if (keep > 0 && fread(kvp->key, 1, keep, stdin) != keep) return 1;
    kvp->key[keep] = '\0';
    skip = klen - keep;
    while (skip > 0) {
        char waste[256];
        uint32_t take = skip < sizeof waste ? skip : (uint32_t) sizeof waste;
        if (fread(waste, 1, take, stdin) != take) return 1;
        skip -= take;
    }
    if (fread(&val, sizeof val, 1, stdin) != 1) return 1;
    kvp->val = (float) val;
    return 0;
}

static int serve_loop(void) {
    static char sinbuf[1 << 16];
    static char soutbuf[1 << 16];
    uint64_t npairs;
    setvbuf(stdin, sinbuf, _IOFBF, sizeof sinbuf);
    setvbuf(stdout, soutbuf, _IOFBF, sizeof soutbuf);
    printf("snap-native-worker 1 mapreduce\n");
    if (fflush(stdout) != 0) return 2;
    while (fread(&npairs, sizeof npairs, 1, stdin) == 1) {
        KVP *inputlist;
        KVP *outputlist;
        int ngroups;
        uint64_t i;
        uint64_t out_n;
        int g;
        if (npairs == UINT64_MAX) exit(86); /* poison frame */
        if (npairs > ((uint64_t) 1 << 32)) return 2;
        inputlist = malloc((size_t) (npairs > 0 ? npairs : 1) * sizeof(KVP));
        if (inputlist == NULL) return 3;
        for (i = 0; i < npairs; i++) {
            if (read_kvp(&inputlist[i]) != 0) { free(inputlist); return 4; }
        }
        if (run_batch(inputlist, (int) npairs, &outputlist, &ngroups) != 0) {
            free(inputlist);
            return 3;
        }
        out_n = (uint64_t) ngroups;
        if (fwrite(&out_n, sizeof out_n, 1, stdout) != 1) return 5;
        for (g = 0; g < ngroups; g++) {
            uint32_t klen = (uint32_t) strlen(outputlist[g].key);
            double val = (double) outputlist[g].val;
            if (fwrite(&klen, sizeof klen, 1, stdout) != 1) return 5;
            if (klen > 0 && fwrite(outputlist[g].key, 1, klen, stdout) != klen)
                return 5;
            if (fwrite(&val, sizeof val, 1, stdout) != 1) return 5;
        }
        if (fflush(stdout) != 0) return 5;
        free(inputlist);
        free(outputlist);
    }
    return 0;
}

int main(int argc, char *argv[]) {
    int nkvp;
    KVP *inputlist, *outputlist;
    int ngroups;

    if (argc > 1 && strcmp(argv[1], "--serve") == 0) {
        return serve_loop();
    }
    if (input(&nkvp, &inputlist) != 0) {
        return 1;
    }
    if (run_batch(inputlist, nkvp, &outputlist, &ngroups) != 0) {
        return 1;
    }
    if (output(ngroups, outputlist) != 0) {
        exit(1);
    }

    free(inputlist);
    free(outputlist);

    return 0;
}
"#;

/// Emit a complete double-precision OpenMP *map* program for a numeric
/// ring: `main` reads one double per line on stdin, applies the
/// translated ring body to every element inside an
/// `#pragma omp parallel for`, and prints one `%.17g` result per line
/// in input order.
///
/// Emission runs with [`Generator::float_literals`] on and the `mod`
/// template overridden to the floor-based form, so the generated C
/// performs exactly the IEEE-754 double operation sequence of
/// [`snap_ast::bytecode::num_binop`]/[`num_unop`] — together with the
/// harness's `-ffp-contract=off` this makes native map output
/// bit-for-bit comparable to the interpreted tiers.
///
/// [`num_unop`]: snap_ast::bytecode::num_unop
/// [`Generator::float_literals`]: crate::gen::Generator::float_literals
pub fn emit_map_openmp(ring: &Ring) -> Result<String, CodegenError> {
    let body = reporter_body(ring, "mapper")?;
    let mut mapping = CodeMapping::preset(Target::C);
    // Snap!'s `mod` is the floored form (`x − y·⌊x/y⌋`), not C's
    // truncating `%` — and `%` does not even compile for doubles.
    mapping.set("mod", "(<#1> - (<#2> * floor(<#1> / <#2>)))");
    let mut gen = Generator::new(&mapping);
    gen.float_literals = true;
    gen.slot_name = Some("__x".to_owned());
    if let Some(p) = ring.params.first() {
        gen.subst.insert(p.clone(), "__x".to_owned());
    }
    let expr = gen.expr(body)?;
    Ok(format!(
        r#"/* Generated OpenMP map program (stdin/stdout line protocol).
   `--serve` switches to the persistent binary frame loop: length-
   prefixed [u64 n][n x f64] frames in native endianness, one response
   frame per request, until EOF on stdin. A frame count of UINT64_MAX
   is the poison frame: the worker exits abruptly (the deterministic
   crash hook the harness uses to test its recovery ladder). */
#include <math.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

static double map_fn(double __x) {{
    return {expr};
}}

static int serve_loop(void) {{
    static char inbuf[1 << 16];
    static char outbuf[1 << 16];
    uint64_t n;
    size_t cap = 0;
    double *in = NULL;
    double *out = NULL;
    setvbuf(stdin, inbuf, _IOFBF, sizeof inbuf);
    setvbuf(stdout, outbuf, _IOFBF, sizeof outbuf);
    printf("snap-native-worker 1 map\n");
    if (fflush(stdout) != 0) return 2;
    while (fread(&n, sizeof n, 1, stdin) == 1) {{
        long i;
        long count;
        if (n == UINT64_MAX) exit(86); /* poison frame: crash on request */
        if (n > ((uint64_t) 1 << 40)) return 2;
        if ((size_t) n > cap) {{
            free(in);
            free(out);
            cap = (size_t) n;
            in = malloc(cap * sizeof(double));
            out = malloc(cap * sizeof(double));
            if (in == NULL || out == NULL) return 3;
        }}
        if (n > 0 && fread(in, sizeof(double), (size_t) n, stdin) != (size_t) n)
            return 4;
        count = (long) n;

        #pragma omp parallel for
        for (i = 0; i < count; i++) {{
            out[i] = map_fn(in[i]);
        }}

        if (fwrite(&n, sizeof n, 1, stdout) != 1) return 5;
        if (n > 0 && fwrite(out, sizeof(double), (size_t) n, stdout) != (size_t) n)
            return 5;
        if (fflush(stdout) != 0) return 5;
    }}
    free(in);
    free(out);
    return 0;
}}

int main(int argc, char *argv[]) {{
    size_t cap = 1024;
    size_t n = 0;
    long i;
    long count;
    char line[256];
    double *in;
    double *out;
    if (argc > 1 && strcmp(argv[1], "--serve") == 0) {{
        return serve_loop();
    }}
    in = malloc(cap * sizeof(double));
    if (in == NULL) return 1;
    while (fgets(line, sizeof line, stdin) != NULL) {{
        if (line[0] == '\n' || line[0] == '\0') continue;
        if (n == cap) {{
            double *grown;
            cap *= 2;
            grown = realloc(in, cap * sizeof(double));
            if (grown == NULL) {{ free(in); return 1; }}
            in = grown;
        }}
        in[n++] = strtod(line, NULL);
    }}
    out = malloc((n > 0 ? n : 1) * sizeof(double));
    if (out == NULL) return 1;
    count = (long) n;

    #pragma omp parallel for
    for (i = 0; i < count; i++) {{
        out[i] = map_fn(in[i]);
    }}

    for (i = 0; i < count; i++) {{
        printf("%.17g\n", out[i]);
    }}
    free(in);
    free(out);
    return 0;
}}
"#
    ))
}

/// The climate mapper of Fig. 19 — `[("avg", (5 × (t − 32)) / 9)]`.
pub fn climate_mapper() -> Ring {
    use snap_ast::builder::*;
    Ring::reporter_with_params(
        vec!["t".into()],
        make_list(vec![
            text("avg"),
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ]),
    )
}

/// The averaging reducer of Fig. 20.
pub fn averaging_reducer() -> Ring {
    use snap_ast::builder::*;
    Ring::reporter_with_params(
        vec!["vals".into()],
        div(
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            length_of(var("vals")),
        ),
    )
}

/// The word-count mapper of Fig. 11 — `[w, 1]`.
pub fn word_count_mapper() -> Ring {
    use snap_ast::builder::*;
    Ring::reporter_with_params(vec!["w".into()], make_list(vec![var("w"), num(1.0)]))
}

/// The word-count summing reducer.
pub fn summing_reducer() -> Ring {
    use snap_ast::builder::*;
    Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn climate_mapper_is_recognized() {
        let spec = recognize(&climate_mapper(), &averaging_reducer()).unwrap();
        assert_eq!(spec.key, KeySource::Constant("avg".into()));
        assert_eq!(spec.value_expr, "((5 * (in->val - 32)) / 9)");
        assert_eq!(spec.reducer, ReducerKind::Average);
    }

    #[test]
    fn word_count_mapper_is_recognized() {
        let spec = recognize(&word_count_mapper(), &summing_reducer()).unwrap();
        assert_eq!(spec.key, KeySource::FromInput);
        assert_eq!(spec.value_expr, "1");
        assert_eq!(spec.reducer, ReducerKind::Sum);
    }

    #[test]
    fn count_reducer_is_recognized() {
        use snap_ast::builder::*;
        let counter = Ring::reporter_with_params(vec!["vals".into()], length_of(var("vals")));
        assert_eq!(recognize_reducer(&counter).unwrap(), ReducerKind::Count);
    }

    #[test]
    fn arbitrary_reducers_are_rejected() {
        use snap_ast::builder::*;
        let weird = Ring::reporter_with_params(vec!["vals".into()], num(42.0));
        assert!(recognize_reducer(&weird).is_err());
    }

    #[test]
    fn mapred_c_matches_listing6_fragments() {
        let program = emit_mapreduce_openmp(
            &climate_mapper(),
            &averaging_reducer(),
            &[("a".into(), 32.0)],
        )
        .unwrap();
        for fragment in [
            "#include <math.h>",
            "#include <string.h>",
            "#include \"kvp.h\"",
            "float avg(",
            "strncpy (out->key, \"avg\", MAXKEY - 1);",
            "out->val = ((5 * (in->val - 32)) / 9);",
            "out->val = avg(in, count);",
        ] {
            assert!(
                program.mapred_c.contains(fragment),
                "missing: {fragment}\n{}",
                program.mapred_c
            );
        }
    }

    #[test]
    fn driver_matches_listing7_fragments() {
        let program = emit_mapreduce_openmp(
            &climate_mapper(),
            &averaging_reducer(),
            &[("a".into(), 32.0), ("a".into(), 212.0)],
        )
        .unwrap();
        for fragment in [
            "/* OpenMP driver for Parallel Snap! MapReduce code output. */",
            "#include <omp.h>",
            "KVP *inputlist, *midlist, *outputlist;",
            "if (input(&nkvp, &inputlist) != 0) {",
            "/* Run mapper */",
            "#pragma omp parallel for shared(nkvp, inputlist, midlist)",
            "/* Sort on keys */",
            "qsort(midlist, (size_t) nkvp, sizeof(KVP), compare);",
            "/* Run reducer */",
            "free(inputlist);",
        ] {
            assert!(
                program.driver_c.contains(fragment),
                "missing: {fragment}\n{}",
                program.driver_c
            );
        }
        assert!(program.driver_c.contains("{\"a\", 32.0f},"));
    }

    #[test]
    fn kvp_header_declares_the_contract() {
        assert!(KVP_H.contains("#define MAXKEY 64"));
        assert!(KVP_H.contains("char key[MAXKEY];"));
        assert!(KVP_H.contains("float val;"));
    }

    #[test]
    fn hello_listings_match_paper() {
        assert!(LISTING3_SEQUENTIAL_HELLO.contains("int ID = 0;"));
        assert!(LISTING4_OPENMP_HELLO.contains("#pragma omp parallel"));
        assert!(LISTING4_OPENMP_HELLO.contains("omp_get_thread_num()"));
    }
}
