//! Differential proptest suite: random numeric rings are lowered to
//! C/OpenMP, compiled, executed over the stdin protocol, and compared
//! **bit-for-bit** against the tree-walk oracle (and the bytecode and
//! columnar batch tiers). Ops are restricted to the IEEE-exact set the
//! four tiers agree on exactly — add/sub/mul/div plus the floored mod,
//! and the Neg/Abs/Sqrt/Round/Floor/Ceil unaries. `pow`/trig/log are
//! excluded: libm is free to differ from Rust's implementations in the
//! last ulp, which would turn bit equality into a tolerance test.
//!
//! Auto-skips (visibly) when no C toolchain is present; CI forbids the
//! skip by running `codegen_check --require-toolchain` alongside.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::sync::Arc;

use snap_ast::builder::*;
use snap_ast::{BinOp, Expr, Ring, UnOp};
use snap_codegen::harness::{compare_values, detect_toolchain, oracle_map_tiers, Harness};
use snap_codegen::openmp::emit_map_openmp;

/// Constant pool: mundane values plus the edges where C `int`
/// arithmetic or printf rounding would diverge from IEEE doubles.
const CONSTANTS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    -3.75,
    9.0,
    10.0,
    0.1,
    1e10,
    1e-10,
    1.0 / 3.0,
];

/// Fixed IEEE edge-case inputs prepended to every random input set.
fn edge_inputs() -> Vec<f64> {
    vec![
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.5,
        -273.15,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::MAX,
        f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        f64::EPSILON,
        1e300,
        -1e300,
    ]
}

/// Random expression over `x`, depth-bounded, IEEE-exact ops only.
fn random_expr(rng: &mut TestRng, depth: u32) -> Expr {
    // Bias leaves toward the variable so most trees actually read x.
    if depth == 0 || rng.below(5) == 0 {
        return if rng.below(3) < 2 {
            var("x")
        } else {
            num(CONSTANTS[rng.below(CONSTANTS.len() as u64) as usize])
        };
    }
    match rng.below(11) {
        0 => Expr::Binary(
            BinOp::Add,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        1 => Expr::Binary(
            BinOp::Sub,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        2 => Expr::Binary(
            BinOp::Mul,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        3 => Expr::Binary(
            BinOp::Div,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        4 => Expr::Binary(
            BinOp::Mod,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        5 => Expr::Unary(UnOp::Neg, Box::new(random_expr(rng, depth - 1))),
        6 => abs(random_expr(rng, depth - 1)),
        7 => sqrt(random_expr(rng, depth - 1)),
        8 => round(random_expr(rng, depth - 1)),
        9 => floor(random_expr(rng, depth - 1)),
        _ => ceiling(random_expr(rng, depth - 1)),
    }
}

fn random_ring(seed: u64) -> Arc<Ring> {
    let mut rng = TestRng::seed_from_u64(seed);
    Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        random_expr(&mut rng, 4),
    ))
}

fn random_inputs(seed: u64) -> Vec<f64> {
    let mut rng = TestRng::seed_from_u64(seed ^ 0x0DA7_A5E7);
    let mut inputs = edge_inputs();
    for _ in 0..24 {
        // Span magnitudes from subnormal-adjacent to 1e6, both signs.
        let mag = 10f64.powf(rng.unit_f64() * 12.0 - 6.0);
        let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
        inputs.push(sign * mag * rng.unit_f64());
    }
    inputs
}

/// Run one generated ring through native C and every oracle tier,
/// asserting bit-for-bit agreement. Returns false when skipped.
fn check_ring(harness: &Harness, seed: u64) -> Result<(), String> {
    let ring = random_ring(seed);
    let inputs = random_inputs(seed);
    let source = emit_map_openmp(&ring).map_err(|e| format!("seed {seed}: emit failed: {e}"))?;
    let native = harness
        .run_map(&format!("diff_ring_{seed:x}"), &source, &inputs)
        .map_err(|e| format!("seed {seed}: native run failed: {e}\n--- source ---\n{source}"))?;
    let tiers = oracle_map_tiers(&ring, &inputs)
        .map_err(|e| format!("seed {seed}: oracle tiers failed: {e}"))?;
    compare_values(
        &format!("seed {seed}: native vs treewalk"),
        &native,
        &tiers.treewalk,
    )
    .map_err(|e| format!("{e}\n--- source ---\n{source}"))?;
    compare_values(
        &format!("seed {seed}: native vs bytecode"),
        &native,
        &tiers.bytecode,
    )?;
    if let Some(batch) = &tiers.batch {
        compare_values(&format!("seed {seed}: native vs batch"), &native, batch)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    fn random_rings_native_matches_all_tiers(seed in 0u64..1_000_000u64) {
        let Ok(harness) = Harness::detect() else {
            eprintln!("codegen.toolchain_missing — skipping differential proptest");
            return;
        };
        if let Err(msg) = check_ring(&harness, seed) {
            panic!("{msg}");
        }
    }
}

/// IEEE specials survive the full compile-and-run protocol through an
/// actual binary: the identity map must hand back the exact bits it was
/// fed (NaN matching any NaN payload).
#[test]
fn ieee_specials_round_trip_through_compiled_identity_map() {
    let Ok(harness) = Harness::detect() else {
        eprintln!("codegen.toolchain_missing — skipping identity round-trip");
        return;
    };
    let ring = Arc::new(Ring::reporter_with_params(vec!["x".into()], var("x")));
    let source = emit_map_openmp(&ring).expect("identity ring translates");
    let inputs = edge_inputs();
    let native = harness
        .run_map("diff_identity", &source, &inputs)
        .expect("identity map compiles and runs");
    compare_values("identity round-trip", &native, &inputs).unwrap_or_else(|e| panic!("{e}"));
}

/// The toolchain probe is stable: repeated detection returns the same
/// compiler identity, and a detected compiler reports a version.
#[test]
fn toolchain_probe_is_stable_and_versioned() {
    let first = detect_toolchain();
    let second = detect_toolchain();
    match (first, second) {
        (Some(a), Some(b)) => {
            assert_eq!(a.cc, b.cc);
            assert_eq!(a.version, b.version);
            assert_eq!(a.openmp, b.openmp);
            assert!(!a.version.is_empty(), "detected compiler has no version");
        }
        (None, None) => {
            eprintln!("codegen.toolchain_missing — probe consistently absent");
        }
        _ => panic!("toolchain probe flip-flopped between calls"),
    }
}
