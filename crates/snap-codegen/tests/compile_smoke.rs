//! Compile-only smoke test: every emitted program family must build
//! clean under `-Wall -Werror` (the harness always passes both). The
//! paper-verbatim listing *constants* (`void main`, no includes) are
//! deliberately excluded — they reproduce the paper's text; the
//! `*_RUNNABLE` variants are the artifacts that must compile.
//!
//! Auto-skips with a visible note on hosts without a C compiler so
//! tier-1 stays green everywhere; CI runs `codegen_check
//! --require-toolchain` to forbid the skip where gcc is guaranteed.

use snap_ast::builder::*;
use snap_ast::{Expr, Ring, UnOp};
use snap_codegen::harness::Harness;
use snap_codegen::openmp::{
    averaging_reducer, climate_mapper, emit_map_openmp, emit_mapreduce_openmp,
    emit_mapreduce_openmp_protocol, summing_reducer, word_count_mapper, OPENMP_HELLO_RUNNABLE,
    SEQUENTIAL_HELLO_RUNNABLE,
};
use snap_codegen::{emit_listing5, emit_listing5_runnable};

fn harness() -> Option<Harness> {
    match Harness::detect() {
        Ok(h) => Some(h),
        Err(e) => {
            eprintln!("codegen.toolchain_missing: {e} — skipping compile smoke test");
            None
        }
    }
}

fn must_compile(h: &Harness, name: &str, sources: &[(&str, &str)], openmp: bool) {
    if let Err(e) = h.compile(name, sources, openmp) {
        panic!("{name} failed -Wall -Werror compile:\n{e}");
    }
}

#[test]
fn hello_listings_compile_warning_free() {
    let Some(h) = harness() else { return };
    must_compile(
        &h,
        "smoke_hello_seq",
        &[("main.c", SEQUENTIAL_HELLO_RUNNABLE)],
        false,
    );
    // Both with OpenMP and through the single-thread fallback path
    // (which adds -Wno-unknown-pragmas instead of -fopenmp).
    must_compile(
        &h,
        "smoke_hello_omp",
        &[("main.c", OPENMP_HELLO_RUNNABLE)],
        true,
    );
    must_compile(
        &h,
        "smoke_hello_omp_fallback",
        &[("main.c", OPENMP_HELLO_RUNNABLE)],
        false,
    );
}

#[test]
fn listing5_compiles_warning_free() {
    let Some(h) = harness() else { return };
    must_compile(&h, "smoke_listing5", &[("main.c", &emit_listing5())], false);
    must_compile(
        &h,
        "smoke_listing5_runnable",
        &[("main.c", &emit_listing5_runnable())],
        false,
    );
}

#[test]
fn map_programs_compile_warning_free() {
    let Some(h) = harness() else { return };
    let rings = [
        (
            "smoke_map_x10",
            Ring::reporter_with_params(vec!["n".into()], mul(var("n"), num(10.0))),
        ),
        (
            "smoke_map_climate",
            Ring::reporter_with_params(
                vec!["t".into()],
                div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
            ),
        ),
        (
            // Every IEEE-exact op family in one body, including the
            // floor-based mod and a constant-only 5/9 subexpression
            // (the int-division hazard the float-literal mode fixes).
            "smoke_map_kitchen_sink",
            Ring::reporter_with_params(
                vec!["x".into()],
                add(
                    modulo(
                        Expr::Unary(UnOp::Neg, Box::new(abs(var("x")))),
                        ceiling(floor(round(sqrt(var("x"))))),
                    ),
                    div(num(5.0), num(9.0)),
                ),
            ),
        ),
        (
            "smoke_map_constant_only",
            Ring::reporter_with_params(vec!["x".into()], div(num(5.0), num(9.0))),
        ),
    ];
    for (name, ring) in rings {
        let source = emit_map_openmp(&ring).expect("ring translates");
        must_compile(&h, name, &[("map_program.c", &source)], true);
    }
}

#[test]
fn mapreduce_matrix_compiles_warning_free() {
    let Some(h) = harness() else { return };
    let count_reducer = Ring::reporter_with_params(vec!["vals".into()], length_of(var("vals")));
    let combos: [(&str, Ring, Ring); 5] = [
        (
            "smoke_mr_climate_avg",
            climate_mapper(),
            averaging_reducer(),
        ),
        ("smoke_mr_wc_sum", word_count_mapper(), summing_reducer()),
        (
            "smoke_mr_wc_count",
            word_count_mapper(),
            count_reducer.clone(),
        ),
        ("smoke_mr_climate_sum", climate_mapper(), summing_reducer()),
        ("smoke_mr_climate_count", climate_mapper(), count_reducer),
    ];
    let dataset = vec![("a".to_owned(), 32.0), ("b".to_owned(), 212.0)];
    for (name, mapper, reducer) in combos {
        // Embedded-dataset Listing 7 driver…
        let embedded = emit_mapreduce_openmp(&mapper, &reducer, &dataset)
            .expect("recognizable mapreduce pair");
        must_compile(
            &h,
            &format!("{name}_embedded"),
            &[
                ("kvp.h", &embedded.kvp_h),
                ("mapred.c", &embedded.mapred_c),
                ("driver.c", &embedded.driver_c),
            ],
            true,
        );
        // …and the stdin-protocol driver the harness runs.
        let protocol =
            emit_mapreduce_openmp_protocol(&mapper, &reducer).expect("recognizable pair");
        must_compile(
            &h,
            &format!("{name}_protocol"),
            &[
                ("kvp.h", &protocol.kvp_h),
                ("mapred.c", &protocol.mapred_c),
                ("driver.c", &protocol.driver_c),
            ],
            true,
        );
    }
}
