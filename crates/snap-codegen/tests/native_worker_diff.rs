//! Differential suite for the **persistent** native tier: random
//! IEEE-exact rings are compiled once, spawned once in `--serve` mode,
//! and streamed many successive binary frames — every frame must match
//! `eval_batch` and the tree-walk oracle **bit-for-bit** (any-NaN
//! rule), the same contract `codegen_diff.rs` enforces for the
//! spawn-per-call protocol. Extra shapes the spawn path never sees:
//! an empty frame, frames crossing the 64-lane `eval_batch` boundary,
//! and the same-pid assertion proving the worker really is warm.
//!
//! Auto-skips (visibly) when no C toolchain is present; CI forbids the
//! skip by running `codegen_check --require-toolchain --persistent`.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::sync::Arc;

use snap_ast::builder::*;
use snap_ast::{BinOp, Expr, Ring, UnOp};
use snap_codegen::harness::{
    compare_pairs, compare_values, oracle_map_tiers, reference_mapreduce, Harness,
    MAPREDUCE_REL_TOL,
};
use snap_codegen::openmp::{emit_mapreduce_openmp_protocol, summing_reducer, word_count_mapper};
use snap_codegen::worker::{native_pool, register_native_map, NativeProgram, WorkerKind};

/// Constant pool: mundane values plus the edges where C `int`
/// arithmetic or printf rounding would diverge from IEEE doubles.
const CONSTANTS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    -3.75,
    9.0,
    10.0,
    0.1,
    1e10,
    1e-10,
    1.0 / 3.0,
];

/// Fixed IEEE edge-case inputs prepended to the first frame of every
/// random stream: binary frames must carry specials without the text
/// protocol's `{:e}`/`strtod` round-trip even being involved.
fn edge_inputs() -> Vec<f64> {
    vec![
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.5,
        -273.15,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::MAX,
        f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        f64::EPSILON,
        1e300,
        -1e300,
    ]
}

/// Random expression over `x`, depth-bounded, IEEE-exact ops only
/// (same generator as `codegen_diff.rs`).
fn random_expr(rng: &mut TestRng, depth: u32) -> Expr {
    if depth == 0 || rng.below(5) == 0 {
        return if rng.below(3) < 2 {
            var("x")
        } else {
            num(CONSTANTS[rng.below(CONSTANTS.len() as u64) as usize])
        };
    }
    match rng.below(11) {
        0 => Expr::Binary(
            BinOp::Add,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        1 => Expr::Binary(
            BinOp::Sub,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        2 => Expr::Binary(
            BinOp::Mul,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        3 => Expr::Binary(
            BinOp::Div,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        4 => Expr::Binary(
            BinOp::Mod,
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        5 => Expr::Unary(UnOp::Neg, Box::new(random_expr(rng, depth - 1))),
        6 => abs(random_expr(rng, depth - 1)),
        7 => sqrt(random_expr(rng, depth - 1)),
        8 => round(random_expr(rng, depth - 1)),
        9 => floor(random_expr(rng, depth - 1)),
        _ => ceiling(random_expr(rng, depth - 1)),
    }
}

fn random_ring(seed: u64) -> Arc<Ring> {
    let mut rng = TestRng::seed_from_u64(seed);
    Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        random_expr(&mut rng, 4),
    ))
}

/// Per-frame random inputs: frame 0 leads with the IEEE specials, later
/// frames are fresh draws so the stream isn't one payload repeated.
fn frame_inputs(seed: u64, frame: u64, len: usize) -> Vec<f64> {
    let mut rng = TestRng::seed_from_u64(seed ^ (frame.wrapping_mul(0x9E37_79B9)) ^ 0x0DA7_A5E7);
    let mut inputs = if frame == 0 {
        edge_inputs()
    } else {
        Vec::new()
    };
    while inputs.len() < len {
        let mag = 10f64.powf(rng.unit_f64() * 12.0 - 6.0);
        let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
        inputs.push(sign * mag * rng.unit_f64());
    }
    inputs
}

/// Register + stream `frames` successive frames through one persistent
/// worker, asserting per-frame bit equality against every oracle tier
/// and that the worker pid never changes (one spawn, many frames).
fn check_persistent_ring(seed: u64, frames: u64) -> Result<(), String> {
    let ring = random_ring(seed);
    let program = register_native_map(&ring)
        .map_err(|e| format!("seed {seed}: register_native_map failed: {e}"))?;
    let mut pid = None;
    for frame in 0..frames {
        let inputs = frame_inputs(seed, frame, 40);
        let native = native_pool()
            .map_frame(&program, &inputs)
            .map_err(|e| format!("seed {seed} frame {frame}: worker frame failed: {e}"))?;
        let this_pid = native_pool().worker_pid(&program.name);
        if frame == 0 {
            pid = this_pid;
        } else if this_pid != pid {
            return Err(format!(
                "seed {seed} frame {frame}: worker respawned mid-stream ({pid:?} -> {this_pid:?})"
            ));
        }
        let tiers = oracle_map_tiers(&ring, &inputs)
            .map_err(|e| format!("seed {seed} frame {frame}: oracle tiers failed: {e}"))?;
        compare_values(
            &format!("seed {seed} frame {frame}: persistent vs treewalk"),
            &native,
            &tiers.treewalk,
        )?;
        compare_values(
            &format!("seed {seed} frame {frame}: persistent vs bytecode"),
            &native,
            &tiers.bytecode,
        )?;
        if let Some(batch) = &tiers.batch {
            compare_values(
                &format!("seed {seed} frame {frame}: persistent vs batch"),
                &native,
                batch,
            )?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    fn random_rings_stream_many_frames_bit_exact(seed in 0u64..1_000_000u64) {
        if Harness::detect().is_err() {
            eprintln!("codegen.toolchain_missing — skipping persistent differential proptest");
            return;
        }
        if let Err(msg) = check_persistent_ring(seed, 5) {
            panic!("{msg}");
        }
    }
}

/// The frame shapes the batch tier treats specially: empty, one lane
/// short of / exactly at / one past the 64-lane `eval_batch` stride,
/// and a two-stride crossing — all through ONE warm worker, interleaved
/// so the protocol must resynchronize after the empty frame.
#[test]
fn empty_and_lane_boundary_frames_round_trip() {
    if Harness::detect().is_err() {
        eprintln!("codegen.toolchain_missing — skipping lane-boundary frames");
        return;
    }
    let ring = Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        add(mul(var("x"), num(3.0)), num(1.5)),
    ));
    let program = register_native_map(&ring).expect("ring compiles");
    let first_pid = {
        let warmup = native_pool()
            .map_frame(&program, &[2.0])
            .expect("warm-up frame");
        assert_eq!(warmup, vec![7.5]);
        native_pool().worker_pid(&program.name)
    };
    for len in [0usize, 1, 63, 64, 65, 128, 130] {
        let inputs: Vec<f64> = (0..len).map(|i| i as f64 * 0.37 - 11.0).collect();
        let native = native_pool()
            .map_frame(&program, &inputs)
            .unwrap_or_else(|e| panic!("frame of {len} elements failed: {e}"));
        let tiers = oracle_map_tiers(&ring, &inputs).expect("oracle tiers");
        compare_values(
            &format!("frame len {len} vs treewalk"),
            &native,
            &tiers.treewalk,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        if let Some(batch) = &tiers.batch {
            compare_values(&format!("frame len {len} vs batch"), &native, batch)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
    assert_eq!(
        native_pool().worker_pid(&program.name),
        first_pid,
        "boundary frames must not kill the worker"
    );
}

/// MapReduce frames through a persistent worker: each frame is one
/// complete job (map, shuffle, reduce), compared against the f64
/// reference at `MAPREDUCE_REL_TOL` (kvp.h reduces in `float`). Two
/// different datasets over the same warm worker prove no state leaks
/// between frames.
#[test]
fn persistent_mapreduce_frames_match_reference() {
    let Ok(harness) = Harness::detect() else {
        eprintln!("codegen.toolchain_missing — skipping persistent mapreduce frames");
        return;
    };
    let mapper = word_count_mapper();
    let reducer = summing_reducer();
    let program = emit_mapreduce_openmp_protocol(&mapper, &reducer).expect("recognized pair");
    let compiled = harness
        .compile(
            "native_worker_wordcount",
            &[
                ("kvp.h", &program.kvp_h),
                ("mapred.c", &program.mapred_c),
                ("driver.c", &program.driver_c),
            ],
            true,
        )
        .expect("mapreduce program compiles");
    let native = NativeProgram {
        name: "native_worker_wordcount".into(),
        binary: compiled.binary,
        kind: WorkerKind::MapReduce,
    };
    let words = ["the", "quick", "brown", "fox", "the", "lazy", "dog", "the"];
    let frames: [Vec<(String, f64)>; 3] = [
        words.iter().map(|w| (w.to_string(), 1.0)).collect(),
        // Different multiset: a leak from frame 1 would change counts.
        ["alpha", "beta", "alpha", "gamma"]
            .iter()
            .map(|w| (w.to_string(), 1.0))
            .collect(),
        Vec::new(), // empty job: zero groups back, worker stays up
    ];
    let mut pid = None;
    for (i, pairs) in frames.iter().enumerate() {
        let got = native_pool()
            .mapreduce_frame(&native, pairs)
            .unwrap_or_else(|e| panic!("mapreduce frame {i} failed: {e}"));
        let want = reference_mapreduce(&mapper, &reducer, pairs).expect("reference semantics");
        compare_pairs(
            &format!("mapreduce frame {i}"),
            &got,
            &want,
            MAPREDUCE_REL_TOL,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let this_pid = native_pool().worker_pid(&native.name);
        if i == 0 {
            pid = this_pid;
        } else {
            assert_eq!(this_pid, pid, "mapreduce worker respawned at frame {i}");
        }
    }
}
