//! Property-based tests for the code-mapping layer.

use proptest::prelude::*;

use snap_codegen::gen::sanitize_identifier;
use snap_codegen::types::CType;
use snap_codegen::{CodeMapping, Generator, Target, Template};

use snap_ast::builder::*;
use snap_ast::{BinOp, Expr};

fn arith_expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![(-1000i64..1000).prop_map(|n| num(n as f64)), Just(var("x")),];
    leaf.prop_recursive(4, 32, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Div)
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::Binary(op, Box::new(a), Box::new(b)))
    })
}

fn ctype_strategy() -> impl Strategy<Value = CType> {
    let leaf = prop_oneof![
        Just(CType::Int),
        Just(CType::Double),
        Just(CType::Bool),
        Just(CType::Text),
        Just(CType::Unknown),
        Just(CType::Any),
    ];
    leaf.prop_recursive(2, 8, 1, |inner| {
        inner.prop_map(|t| CType::List(Box::new(t)))
    })
}

proptest! {
    #[test]
    fn sanitized_identifiers_are_valid_c(name in ".{0,24}") {
        let id = sanitize_identifier(&name);
        prop_assert!(!id.is_empty());
        let mut chars = id.chars();
        let first = chars.next().unwrap();
        prop_assert!(first.is_ascii_alphabetic() || first == '_');
        prop_assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'));
    }

    #[test]
    fn template_fill_never_panics(text in ".{0,60}", fills in prop::collection::vec(".{0,10}", 0..4)) {
        let t = Template::new(text);
        let _ = t.fill(&fills);
        let _ = t.fill_indented(&fills);
        let _ = t.max_placeholder();
    }

    #[test]
    fn template_without_placeholders_is_identity(
        text in "[^<]{0,60}",
        fills in prop::collection::vec(".{0,10}", 0..4)
    ) {
        let t = Template::new(text.clone());
        prop_assert_eq!(t.fill(&fills), text);
    }

    #[test]
    fn generated_c_arithmetic_has_balanced_parens(e in arith_expr_strategy()) {
        let mapping = CodeMapping::preset(Target::C);
        let mut generator = Generator::new(&mapping);
        let code = generator.expr(&e).unwrap();
        let mut depth: i64 = 0;
        for ch in code.chars() {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    prop_assert!(depth >= 0, "unbalanced in {code}");
                }
                _ => {}
            }
        }
        prop_assert_eq!(depth, 0, "unbalanced in {}", code);
    }

    #[test]
    fn all_three_targets_translate_arithmetic(e in arith_expr_strategy()) {
        for target in [Target::C, Target::JavaScript, Target::Python] {
            let mapping = CodeMapping::preset(target);
            let mut generator = Generator::new(&mapping);
            prop_assert!(generator.expr(&e).is_ok());
        }
    }

    #[test]
    fn ctype_join_is_commutative_and_idempotent(a in ctype_strategy(), b in ctype_strategy()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&a), a.clone());
    }

    #[test]
    fn ctype_join_is_associative(
        a in ctype_strategy(),
        b in ctype_strategy(),
        c in ctype_strategy()
    ) {
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn every_ctype_has_a_c_spelling(t in ctype_strategy()) {
        prop_assert!(!t.c_name().is_empty());
    }
}
