//! Chaos suite for the persistent native tier: workers are killed
//! mid-stream (poison frame), made to crash on every frame (a
//! deliberately broken binary), and recompiled under a new
//! content-addressed key — asserting the crash ladder (respawn exactly
//! once, then propagate so the caller falls back in-process) and the
//! staleness rule (a new binary retires the old warm worker; frames
//! never run stale code).
//!
//! Counters are process-global, so the counter-delta tests serialize on
//! one mutex; each uses its own program name so warm workers never
//! cross-talk.

use std::sync::{Arc, Mutex, OnceLock};

use snap_ast::builder::*;
use snap_ast::Ring;
use snap_codegen::harness::Harness;
use snap_codegen::openmp::emit_map_openmp;
use snap_codegen::worker::{native_pool, register_native_map, NativeProgram, WorkerKind};
use snap_trace::well_known;

/// Serializes the counter-delta tests within this binary.
fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn harness() -> Option<Harness> {
    match Harness::detect() {
        Ok(h) => Some(h),
        Err(e) => {
            eprintln!("codegen.toolchain_missing: {e} — skipping chaos test");
            None
        }
    }
}

/// A worker that performs the handshake, then exits before answering
/// any frame — every frame against it fails, driving the ladder to the
/// respawn and then to the caller's fallback.
const CRASH_ALWAYS_C: &str = r#"#include <stdio.h>
#include <stdlib.h>
int main(int argc, char *argv[]) {
    (void) argc;
    (void) argv;
    printf("snap-native-worker 1 map\n");
    fflush(stdout);
    return 1;
}
"#;

/// Compile a crash-always map worker under `name`.
fn crash_always_program(harness: &Harness, name: &str) -> NativeProgram {
    let compiled = harness
        .compile(name, &[("crash.c", CRASH_ALWAYS_C)], false)
        .expect("crash-always source compiles");
    NativeProgram {
        name: name.to_owned(),
        binary: compiled.binary,
        kind: WorkerKind::Map,
    }
}

/// Poison mid-stream: the next frame finds a dead worker, respawns
/// exactly once, and answers with results identical to before the kill.
#[test]
fn poisoned_worker_respawns_exactly_once_with_identical_results() {
    if harness().is_none() {
        return;
    }
    let _guard = chaos_lock();
    let ring = Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        mul(var("x"), num(2.0)),
    ));
    let program = register_native_map(&ring).expect("ring compiles");
    let inputs: Vec<f64> = (0..200).map(|i| i as f64 * 0.5 - 40.0).collect();
    let before_kill = native_pool()
        .map_frame(&program, &inputs)
        .expect("healthy frame");
    let pid_before = native_pool().worker_pid(&program.name);
    assert!(pid_before.is_some(), "worker is warm");

    let restarts_before = well_known::CODEGEN_WORKER_RESTARTS.get();
    let spawns_before = well_known::CODEGEN_WORKER_SPAWNS.get();
    assert!(
        native_pool().poison(&program.name),
        "poison reaches a live worker"
    );

    let after_kill = native_pool()
        .map_frame(&program, &inputs)
        .expect("frame after poison recovers");
    assert_eq!(
        after_kill, before_kill,
        "a worker crash must never change results"
    );
    assert_eq!(
        well_known::CODEGEN_WORKER_RESTARTS.get() - restarts_before,
        1,
        "exactly one respawn"
    );
    assert_eq!(
        well_known::CODEGEN_WORKER_SPAWNS.get() - spawns_before,
        1,
        "the respawn is one spawn"
    );
    let pid_after = native_pool().worker_pid(&program.name);
    assert!(pid_after.is_some());
    assert_ne!(pid_after, pid_before, "respawn is a fresh process");
}

/// A worker that dies on every frame: the ladder respawns once, the
/// retry also fails, and the error propagates (exactly one restart per
/// call — never a respawn storm).
#[test]
fn crash_always_worker_errors_after_exactly_one_restart() {
    let Some(harness) = harness() else { return };
    let _guard = chaos_lock();
    let program = crash_always_program(&harness, "chaos_crash_always");
    let restarts_before = well_known::CODEGEN_WORKER_RESTARTS.get();
    let err = native_pool().map_frame(&program, &[1.0, 2.0, 3.0]);
    assert!(err.is_err(), "crash-always worker cannot answer");
    assert_eq!(
        well_known::CODEGEN_WORKER_RESTARTS.get() - restarts_before,
        1,
        "one respawn attempt, then propagate"
    );
    native_pool().retire(&program.name);
}

/// The stale-binary rule: a recompile of the "same" program under a new
/// content-addressed key must retire the old warm worker — the very
/// next frame runs the new code, never the stale binary.
#[test]
fn recompile_under_new_key_retires_the_stale_worker() {
    let Some(harness) = harness() else { return };
    let _guard = chaos_lock();
    let doubler = Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        mul(var("x"), num(2.0)),
    ));
    let tripler = Arc::new(Ring::reporter_with_params(
        vec!["x".into()],
        mul(var("x"), num(3.0)),
    ));
    // Compile both sources under ONE pool name, as a recompile would:
    // the harness cache key (source hash) gives them different binaries.
    let name = "chaos_stale_worker";
    let compile = |ring: &Arc<Ring>| {
        let source = emit_map_openmp(ring).expect("ring translates");
        harness
            .compile(name, &[("map_program.c", &source)], true)
            .expect("ring compiles")
    };
    let v1 = NativeProgram {
        name: name.to_owned(),
        binary: compile(&doubler).binary,
        kind: WorkerKind::Map,
    };
    let v2 = NativeProgram {
        name: name.to_owned(),
        binary: compile(&tripler).binary,
        kind: WorkerKind::Map,
    };
    assert_ne!(
        v1.binary, v2.binary,
        "content addressing separates the builds"
    );

    let inputs = [1.0, 2.0, 3.0];
    assert_eq!(
        native_pool().map_frame(&v1, &inputs).expect("v1 frame"),
        vec![2.0, 4.0, 6.0]
    );
    let pid_v1 = native_pool().worker_pid(name);
    let reaped_before = well_known::CODEGEN_WORKER_REAPED.get();
    // Same pool name, new binary: the warm v1 worker must be retired,
    // not asked to serve v2's frame.
    assert_eq!(
        native_pool().map_frame(&v2, &inputs).expect("v2 frame"),
        vec![3.0, 6.0, 9.0],
        "frame after recompile must run the NEW code"
    );
    assert!(
        well_known::CODEGEN_WORKER_REAPED.get() > reaped_before,
        "stale worker retirement is counted"
    );
    assert_ne!(
        native_pool().worker_pid(name),
        pid_v1,
        "stale worker process is gone"
    );
    native_pool().retire(name);
}
