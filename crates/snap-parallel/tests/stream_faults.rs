//! Fault tolerance in the streaming tier: an injected mid-stream panic
//! must degrade one block (retry, then item-by-item salvage), never the
//! stream — the pipeline completes with full output and the salvage is
//! visible in stats and counters.
//!
//! Kept in its own test binary: the fault injector is process-global,
//! and this binary's single test owns it for its whole run.

use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_parallel::{map_reduce, Pipeline, StreamConfig};
use snap_trace::well_known as metrics;
use snap_workers::{install_injector, FaultInjector, FaultPolicy};

#[test]
fn injected_panics_salvage_blocks_without_stalling_the_stream() {
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let words = ["the", "fox", "dog", "a", "the"];
    let items: Vec<Value> = (0..400).map(|i| words[i % words.len()].into()).collect();

    // Reference first, injector-free.
    let expected = map_reduce(mapper.clone(), reducer.clone(), items.clone(), 4).unwrap();

    // Every block attempt panics (panic_p = 1.0): each block burns its
    // retry, then the injector-free salvage pass recovers every item.
    // This is the worst fault load the tier can see short of the ring
    // itself panicking.
    install_injector(Some(FaultInjector::new(0xA8).panic_probability(1.0)));
    let panicked_before = metrics::POOL_JOBS_PANICKED.get();
    let salvaged_before = metrics::STREAM_BLOCKS_SALVAGED.get();
    let pipeline = Pipeline::new(StreamConfig {
        block_items: 32,
        policy: FaultPolicy::with_retries(1).backoff(Duration::ZERO),
        ..Default::default()
    })
    .map(mapper)
    .reduce_by_key(reducer, usize::MAX);
    let result = pipeline.run_with_stats(items);
    install_injector(None);

    let (streamed, stats) = result.unwrap();
    assert_eq!(streamed, expected, "salvaged stream must match the batch");
    assert_eq!(stats.items_dropped, 0, "salvage recovers every item");
    // 400 items / 32 per block = 13 blocks, each salvaged once, plus
    // the reduce window's own salvage.
    assert!(
        stats.blocks_salvaged >= 13,
        "every source block must be salvaged, got {}",
        stats.blocks_salvaged
    );
    assert_eq!(
        metrics::STREAM_BLOCKS_SALVAGED.get() - salvaged_before,
        stats.blocks_salvaged,
        "stats and the global counter must agree"
    );
    // Each salvaged block panicked twice (attempt + retry) before its
    // salvage pass; the windowed reduce adds its own.
    assert!(metrics::POOL_JOBS_PANICKED.get() - panicked_before >= 26);
}
