//! Property-based tests: the parallel blocks are semantically equal to
//! their sequential references, whatever the input or worker count.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_parallel::{map_reduce, map_reduce_with_combine, parallel_map, shuffle, CombinePolicy};
use snap_workers::RingMapOptions;

fn word_strategy() -> impl Strategy<Value = String> {
    "[a-e]{1,3}" // small alphabet → plenty of key collisions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn word_count_matches_reference(
        words in prop::collection::vec(word_strategy(), 0..120),
        workers in 1usize..9
    ) {
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ));
        let items: Vec<Value> = words.iter().map(|w| Value::text(w.clone())).collect();
        let out = map_reduce(mapper, reducer, items, workers).unwrap();

        let mut reference: BTreeMap<String, u64> = BTreeMap::new();
        for w in &words {
            *reference.entry(w.clone()).or_default() += 1;
        }
        prop_assert_eq!(out.len(), reference.len());
        for (pair, (word, count)) in out.iter().zip(reference.iter()) {
            let pair = pair.as_list().unwrap();
            prop_assert_eq!(pair.item(1).unwrap().to_display_string(), word.clone());
            prop_assert_eq!(pair.item(2).unwrap().to_number() as u64, *count);
        }
    }

    #[test]
    fn average_reduce_matches_arithmetic_mean(
        temps in prop::collection::vec(-100f64..150.0, 1..80),
        workers in 1usize..6
    ) {
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["t".into()],
            make_list(vec![
                text("avg"),
                div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
            ]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            div(
                combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                length_of(var("vals")),
            ),
        ));
        let items: Vec<Value> = temps.iter().map(|&t| Value::Number(t)).collect();
        let out = map_reduce(mapper, reducer, items, workers).unwrap();
        let got = out[0].as_list().unwrap().item(2).unwrap().to_number();
        let expected = temps.iter().map(|&t| 5.0 * (t - 32.0) / 9.0).sum::<f64>()
            / temps.len() as f64;
        prop_assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    #[test]
    fn shuffle_preserves_every_value(
        pairs in prop::collection::vec(("[a-c]{1}", -100i64..100), 0..60)
    ) {
        let input: Vec<(Value, Value)> = pairs
            .iter()
            .map(|(k, v)| (Value::text(k.clone()), Value::Number(*v as f64)))
            .collect();
        let groups = shuffle(input);
        let total: usize = groups.iter().map(|(_, vs)| vs.len()).sum();
        prop_assert_eq!(total, pairs.len());
        // Keys strictly ascending.
        for window in groups.windows(2) {
            prop_assert_eq!(
                window[0].0.snap_cmp(&window[1].0),
                std::cmp::Ordering::Less
            );
        }
    }

    #[test]
    fn parallel_map_preserves_length_and_order(
        xs in prop::collection::vec(-1e6f64..1e6, 0..100),
        workers in 1usize..9
    ) {
        let ring = Arc::new(Ring::reporter(sub(num(0.0), empty_slot())));
        let items: Vec<Value> = xs.iter().map(|&x| Value::Number(x)).collect();
        let out = parallel_map(ring, items, workers).unwrap();
        prop_assert_eq!(out.len(), xs.len());
        for (o, x) in out.iter().zip(&xs) {
            prop_assert_eq!(o.to_number(), -x);
        }
    }

    #[test]
    fn map_reduce_is_insensitive_to_input_order(
        mut words in prop::collection::vec(word_strategy(), 0..60),
        workers in 1usize..5
    ) {
        let mapper = || Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ));
        let reducer = || Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ));
        let forward: Vec<Value> = words.iter().map(|w| Value::text(w.clone())).collect();
        let a = map_reduce(mapper(), reducer(), forward, workers).unwrap();
        words.reverse();
        let backward: Vec<Value> = words.iter().map(|w| Value::text(w.clone())).collect();
        let b = map_reduce(mapper(), reducer(), backward, workers).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn map_side_combining_is_invisible_in_output(
        words in prop::collection::vec(word_strategy(), 0..300),
        workers in 1usize..9
    ) {
        // Word count with the combiner on vs forced off: identical
        // output, including group ordering — integer `+` folds are exact
        // however the pairs were pre-reduced across chunks.
        let mapper = || Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ));
        let reducer = || Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ));
        let items: Vec<Value> = words.iter().map(|w| Value::text(w.clone())).collect();
        let options = RingMapOptions { workers, ..Default::default() };
        let on = map_reduce_with_combine(
            mapper(), reducer(), items.clone(), options, CombinePolicy::Auto,
        ).unwrap();
        let off = map_reduce_with_combine(
            mapper(), reducer(), items, options, CombinePolicy::Disabled,
        ).unwrap();
        prop_assert_eq!(on, off);
    }
}
