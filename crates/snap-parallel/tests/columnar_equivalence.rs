//! Acceptance tests for the columnar batch tier at the blocks layer:
//! with `ColumnarPolicy::Auto`, `parallelMap` and `mapReduce` must
//! produce output — values *and* ordering — bit-for-bit identical to
//! the per-element (`Disabled`) runs, on both the numeric climate
//! workload (which batches) and the word-count corpus (whose
//! list-producing mapper falls back to boxed per-element calls).

use std::sync::Arc;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_data::{generate_noaa, generate_words, NoaaConfig};
use snap_parallel::{map_reduce_with_options, parallel_map_with_options};
use snap_trace::well_known as metrics;
use snap_workers::{ColumnarPolicy, RingMapOptions};

fn options(columnar: ColumnarPolicy) -> RingMapOptions {
    RingMapOptions {
        workers: 4,
        columnar,
        ..Default::default()
    }
}

/// °F → °C as a one-parameter ring: 5 × (t − 32) ÷ 9.
fn f_to_c_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
    ))
}

/// Bit-exact elementwise comparison for number lists, modulo NaN
/// payloads (any NaN matches any NaN): which payload propagates when
/// two NaNs meet at a commutable op is an instruction-operand-order
/// artifact the optimizer may pick differently for the scalar and
/// vectorized loops. Signed zeros, infinities and subnormals are exact.
fn assert_numbers_bits_eq(a: &[Value], b: &[Value]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (Value::Number(p), Value::Number(q)) => assert!(
                p.to_bits() == q.to_bits() || (p.is_nan() && q.is_nan()),
                "element {i}: {p:?} vs {q:?}"
            ),
            _ => assert_eq!(x, y, "element {i}"),
        }
    }
}

#[test]
fn climate_parallel_map_columnar_on_off_are_identical() {
    let dataset = generate_noaa(&NoaaConfig {
        stations: 10,
        years: 10,
        readings_per_year: 52,
        ..NoaaConfig::default()
    });
    let temps = dataset.temps_f_values();
    let chunks_before = metrics::PAR_COLUMNAR_CHUNKS.get();
    let on = parallel_map_with_options(f_to_c_ring(), temps.clone(), options(ColumnarPolicy::Auto))
        .unwrap();
    assert!(
        metrics::PAR_COLUMNAR_CHUNKS.get() > chunks_before,
        "the all-numeric climate map must take the columnar tier"
    );
    let off =
        parallel_map_with_options(f_to_c_ring(), temps, options(ColumnarPolicy::Disabled)).unwrap();
    assert_numbers_bits_eq(&on, &off);
}

#[test]
fn awkward_floats_survive_the_columnar_tier_bitwise() {
    // parallelMap over the IEEE specials: ordering and bits must match
    // the per-element path exactly.
    let mut inputs: Vec<Value> = (0..40).map(|i| Value::Number(i as f64 * 1.7)).collect();
    for special in [
        f64::NAN,
        f64::from_bits(0x7ff8_0000_dead_beef),
        -0.0,
        0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        5e-324,
    ] {
        inputs.push(Value::Number(special));
    }
    let ring = Arc::new(Ring::reporter(add(
        mul(empty_slot(), num(0.1)),
        modulo(empty_slot(), num(7.0)),
    )));
    let on = parallel_map_with_options(ring.clone(), inputs.clone(), options(ColumnarPolicy::Auto))
        .unwrap();
    let off = parallel_map_with_options(ring, inputs, options(ColumnarPolicy::Disabled)).unwrap();
    assert_numbers_bits_eq(&on, &off);
}

#[test]
fn word_count_map_reduce_columnar_on_off_are_identical() {
    // The word-count mapper produces [word, 1] lists — not batchable —
    // so Auto must fall back cleanly and change nothing, including key
    // ordering.
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let words: Vec<Value> = generate_words(5_000, 42)
        .into_iter()
        .map(Value::from)
        .collect();
    let fallback_before = metrics::RING_BATCH_FALLBACKS.get();
    let on = map_reduce_with_options(
        mapper.clone(),
        reducer.clone(),
        words.clone(),
        options(ColumnarPolicy::Auto),
    )
    .unwrap();
    assert!(
        metrics::RING_BATCH_FALLBACKS.get() > fallback_before,
        "the boxed word-count mapper must count a columnar fallback"
    );
    let off =
        map_reduce_with_options(mapper, reducer, words, options(ColumnarPolicy::Disabled)).unwrap();
    assert_eq!(on, off, "columnar fallback changed mapReduce output");
}

#[test]
fn climate_map_reduce_columnar_on_off_are_identical() {
    // The full climate pipeline (list-producing mapper, averaging
    // reducer) under both policies: the map phase falls back, the
    // output must be unchanged.
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        make_list(vec![
            text("avg"),
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        div(
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            length_of(var("vals")),
        ),
    ));
    let temps = generate_noaa(&NoaaConfig {
        stations: 5,
        years: 5,
        readings_per_year: 24,
        ..NoaaConfig::default()
    })
    .temps_f_values();
    let on = map_reduce_with_options(
        mapper.clone(),
        reducer.clone(),
        temps.clone(),
        options(ColumnarPolicy::Auto),
    )
    .unwrap();
    let off =
        map_reduce_with_options(mapper, reducer, temps, options(ColumnarPolicy::Disabled)).unwrap();
    assert_eq!(on, off);
}
