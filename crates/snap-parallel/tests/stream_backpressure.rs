//! Backpressure acceptance: a slow sink must bound every inter-stage
//! queue at its configured capacity — the defining property of the
//! streaming tier (peak memory independent of stream length) — and the
//! stall must be visible in telemetry.

use std::sync::Arc;
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_parallel::{Pipeline, StreamConfig};
use snap_trace::well_known as metrics;

fn times_ten() -> Arc<Ring> {
    Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
}

#[test]
fn slow_sink_bounds_every_queue_at_capacity() {
    let waits_before = metrics::STREAM_BACKPRESSURE_WAITS.get();
    let items: Vec<Value> = (0..600).map(|n| Value::Number(n as f64)).collect();
    let capacity = 2;
    let pipeline = Pipeline::new(StreamConfig {
        block_items: 8,
        capacity,
        stage_workers: 2,
        ..Default::default()
    })
    .map(times_ten())
    .map(times_ten());
    let mut seen = 0usize;
    let stats = pipeline
        .run_each(items, |_| {
            // ~75 blocks into a sink that dawdles per block: upstream
            // must park rather than queue without bound.
            if seen.is_multiple_of(8) {
                std::thread::sleep(Duration::from_millis(1));
            }
            seen += 1;
        })
        .unwrap();
    assert_eq!(seen, 600);
    assert!(!stats.sequential, "backpressure needs the pooled path");
    assert_eq!(stats.queue_capacity, capacity);
    assert!(!stats.peak_queue_depths.is_empty());
    for (edge, &peak) in stats.peak_queue_depths.iter().enumerate() {
        assert!(
            peak <= capacity,
            "edge {edge}: peak depth {peak} exceeded capacity {capacity}"
        );
    }
    assert!(
        metrics::STREAM_BACKPRESSURE_WAITS.get() > waits_before,
        "a slow sink over 75 blocks must park a producer at least once"
    );
}

#[test]
fn in_flight_blocks_bound_the_reorder_buffer() {
    // With a tight in-flight credit budget, a long stream still
    // completes and every queue stays within capacity — even with the
    // wide farm racing to finish blocks out of order.
    let items: Vec<Value> = (0..5_000).map(|n| Value::Number(n as f64)).collect();
    let pipeline = Pipeline::new(StreamConfig {
        block_items: 4,
        capacity: 2,
        stage_workers: 4,
        max_in_flight: 6,
        ..Default::default()
    })
    .map(times_ten());
    let (out, stats) = pipeline.run_with_stats(items).unwrap();
    assert_eq!(out.len(), 5_000);
    assert_eq!(out[4999], Value::Number(49_990.0));
    assert_eq!(stats.blocks, 1_250);
    for &peak in &stats.peak_queue_depths {
        assert!(peak <= stats.queue_capacity);
    }
}

#[test]
fn queue_depth_gauges_return_to_zero_after_the_run() {
    let items: Vec<Value> = (0..500).map(|n| Value::Number(n as f64)).collect();
    let pipeline = Pipeline::new(StreamConfig {
        block_items: 16,
        ..Default::default()
    })
    .map(times_ten());
    pipeline.run(items).unwrap();
    // Every block sent was received: the global depth gauge must not
    // drift (other tests run concurrently, so only assert non-negative
    // rather than exactly zero).
    assert!(
        metrics::STREAM_QUEUE_DEPTH.get() >= 0,
        "queue-depth gauge went negative: unbalanced incr/decr"
    );
}
