//! Steady-state thread accounting for the pooled executor.
//!
//! The point of the persistent pool is that repeated `parallelMap`
//! invocations reuse worker threads instead of spawning fresh ones per
//! call (the Parallel.js behaviour the seed mirrored). This test drives
//! 100 consecutive `parallelMap` VM invocations through the worker
//! backend and asserts the process thread count is constant after the
//! first call — no per-call thread creation in the steady state.
//!
//! It lives in its own integration-test binary so it owns the process:
//! no other test's pool usage or scoped spawns can perturb the count.

use snap_ast::builder::*;
use snap_ast::{Project, Script, SpriteDef};
use snap_vm::Vm;

/// Current thread count of this process, from `/proc/self/status`.
/// Returns `None` where procfs is unavailable (non-Linux hosts).
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// One complete VM run of `say (parallelMap (( ) × 10) over [0..49]
/// with 4 workers)` using the default (pooled) worker backend.
fn run_parallel_map_vm() {
    let script = vec![say(parallel_map_with_workers(
        ring_reporter(mul(empty_slot(), num(10.0))),
        number_list((0..50).map(f64::from)),
        num(4.0),
    ))];
    let project = Project::new("steady")
        .with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(script)));
    let mut vm = Vm::new(project);
    snap_parallel::install(&mut vm);
    vm.green_flag();
    vm.run_until_idle();
    assert_eq!(vm.world.said(), vec!["[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240, 250, 260, 270, 280, 290, 300, 310, 320, 330, 340, 350, 360, 370, 380, 390, 400, 410, 420, 430, 440, 450, 460, 470, 480, 490]"]);
}

#[test]
fn thread_count_is_constant_across_repeated_parallel_maps() {
    let Some(_) = os_thread_count() else {
        eprintln!("skipping: /proc/self/status not available on this host");
        return;
    };

    // First invocation may lazily create the global pool (and grow it to
    // the requested worker count); that is the only sanctioned spawn.
    run_parallel_map_vm();
    let baseline = os_thread_count().unwrap();

    let mut max_seen = baseline;
    for i in 0..100 {
        run_parallel_map_vm();
        let now = os_thread_count().unwrap();
        max_seen = max_seen.max(now);
        assert!(
            now <= baseline,
            "invocation {i}: thread count grew from {baseline} to {now} — \
             the pooled executor must not spawn threads in the steady state"
        );
    }
    assert_eq!(
        max_seen, baseline,
        "no invocation may exceed the post-warmup thread count"
    );
}
