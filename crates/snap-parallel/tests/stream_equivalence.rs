//! Acceptance tests for the streaming tier's ordered emitter: a
//! pipeline run must produce output — values *and* ordering —
//! bit-for-bit identical to the batch blocks, whatever the block size,
//! farm width, or channel capacity, including the columnar tier's NaN
//! convention (any NaN matches any NaN; see `columnar_equivalence.rs`).

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_parallel::{map_reduce, parallel_map, Pipeline, StreamConfig};

fn numeric_ring() -> Arc<Ring> {
    // Batchable numeric chain: exercises the columnar block path.
    Arc::new(Ring::reporter(add(
        mul(empty_slot(), num(0.1)),
        modulo(empty_slot(), num(7.0)),
    )))
}

fn word_count_mapper() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ))
}

fn word_count_reducer() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ))
}

/// Bit-exact elementwise comparison modulo NaN payloads: which payload
/// survives a commutable op is an instruction-operand-order artifact
/// the scalar and vectorized loops may pick differently.
fn assert_numbers_bits_eq(a: &[Value], b: &[Value]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (Value::Number(p), Value::Number(q)) => assert!(
                p.to_bits() == q.to_bits() || (p.is_nan() && q.is_nan()),
                "element {i}: {p:?} vs {q:?}"
            ),
            _ => assert_eq!(x, y, "element {i}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streamed_numeric_map_equals_batch_bitwise(
        values in prop::collection::vec(-1e6f64..1e6, 0..400),
        block_items in 1usize..96,
        stage_workers in 1usize..4,
        capacity in 1usize..6,
    ) {
        let mut items: Vec<Value> = values.into_iter().map(Value::Number).collect();
        // Sprinkle the IEEE specials so the columnar NaN convention is
        // exercised on every case with enough items.
        for special in [f64::NAN, -0.0, f64::INFINITY, 5e-324] {
            items.push(Value::Number(special));
        }
        let pipeline = Pipeline::new(StreamConfig {
            block_items,
            stage_workers,
            capacity,
            ..Default::default()
        })
        .map(numeric_ring());
        let streamed = pipeline.run(items.clone()).unwrap();
        let batch = parallel_map(numeric_ring(), items, 4).unwrap();
        assert_numbers_bits_eq(&streamed, &batch);
    }

    #[test]
    fn streamed_word_count_window_equals_per_window_batch(
        words in prop::collection::vec("[a-e]{1,3}", 0..200),
        block_items in 1usize..48,
        window_blocks in 1usize..6,
    ) {
        let items: Vec<Value> = words.iter().map(|w| Value::text(w.clone())).collect();
        let window = block_items * window_blocks;
        let pipeline = Pipeline::new(StreamConfig {
            block_items,
            ..Default::default()
        })
        .map(word_count_mapper())
        .reduce_by_key(word_count_reducer(), window);
        let streamed = pipeline.run(items.clone()).unwrap();
        // Reference: the batch mapReduce of each window, concatenated.
        let mut expected = Vec::new();
        for chunk in items.chunks(window.max(1)) {
            expected.extend(
                map_reduce(word_count_mapper(), word_count_reducer(), chunk.to_vec(), 4).unwrap(),
            );
        }
        prop_assert_eq!(streamed, expected);
    }
}

#[test]
fn whole_corpus_window_equals_one_batch_map_reduce() {
    // window >= total items → exactly one window → the streaming run is
    // the batch mapReduce, bit for bit.
    let words = ["the", "fox", "a", "dog", "the", "the", "fox"];
    let items: Vec<Value> = (0..350).map(|i| words[i % words.len()].into()).collect();
    let pipeline = Pipeline::new(StreamConfig {
        block_items: 32,
        ..Default::default()
    })
    .map(word_count_mapper())
    .reduce_by_key(word_count_reducer(), usize::MAX);
    let (streamed, stats) = pipeline.run_with_stats(items.clone()).unwrap();
    let batch = map_reduce(word_count_mapper(), word_count_reducer(), items, 4).unwrap();
    assert_eq!(streamed, batch);
    assert_eq!(stats.windows, 1);
    assert_eq!(stats.items_in, 350);

    // Sanity on the reference itself: counts agree with a hand fold.
    let mut reference: BTreeMap<String, u64> = BTreeMap::new();
    for i in 0..350 {
        *reference
            .entry(words[i % words.len()].to_string())
            .or_default() += 1;
    }
    assert_eq!(streamed.len(), reference.len());
}

#[test]
fn wide_farms_with_tiny_blocks_preserve_order() {
    // Max reordering pressure: 1-item blocks through a wide farm, tiny
    // channels. The ordered emitter must still reproduce input order.
    let items: Vec<Value> = (0..200).map(|n| Value::Number(n as f64)).collect();
    let pipeline = Pipeline::new(StreamConfig {
        block_items: 1,
        stage_workers: 4,
        capacity: 2,
        ..Default::default()
    })
    .map(numeric_ring())
    .map(numeric_ring());
    let streamed = pipeline.run(items.clone()).unwrap();
    let once = parallel_map(numeric_ring(), items, 4).unwrap();
    let batch = parallel_map(numeric_ring(), once, 4).unwrap();
    assert_numbers_bits_eq(&streamed, &batch);
}
