//! Acceptance tests for map-side combining on the word-count corpus.
//!
//! The PR's contract: on a realistic Zipf word corpus the combiner must
//! cut shuffled pairs by **at least 5×** while leaving the `mapReduce`
//! output — values *and* group ordering — bit-for-bit identical to the
//! uncombined run.

use std::sync::Arc;

use snap_ast::builder::*;
use snap_ast::{BinOp, Ring, Value};
use snap_data::generate_words;
use snap_parallel::{combine_pairs, map_reduce_with_combine, CombinePolicy};
use snap_trace::well_known as metrics;
use snap_workers::{ExecMode, RingMapOptions};

fn word_count_mapper() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ))
}

fn word_count_reducer() -> Arc<Ring> {
    Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ))
}

/// The corpus used by the acceptance check: large enough that every
/// worker chunk sees each common word many times.
fn corpus(n: usize) -> Vec<Value> {
    generate_words(n, 42).into_iter().map(Value::from).collect()
}

#[test]
fn combiner_cuts_pairs_at_least_five_fold_on_word_corpus() {
    // Deterministic, directly on the combiner: 20k Zipf words over a
    // bounded vocabulary, 4 chunks → at most 4 × vocabulary pairs out.
    let pairs: Vec<(Value, Value)> = corpus(20_000)
        .into_iter()
        .map(|w| (w, Value::Number(1.0)))
        .collect();
    let n_in = pairs.len();
    let combined_before = metrics::SHUFFLE_PAIRS_COMBINED.get();
    let runs_before = metrics::SHUFFLE_COMBINE_RUNS.get();
    let out = combine_pairs(pairs, BinOp::Add, 4, ExecMode::Pooled);
    assert!(
        out.len() * 5 <= n_in,
        "expected ≥5× pair reduction, got {} -> {}",
        n_in,
        out.len()
    );
    // The trace counters record exactly what was eliminated.
    assert_eq!(
        metrics::SHUFFLE_PAIRS_COMBINED.get() - combined_before,
        (n_in - out.len()) as u64
    );
    assert_eq!(metrics::SHUFFLE_COMBINE_RUNS.get() - runs_before, 1);
    // Totals survive: the partial sums still add up to the corpus size.
    let total: f64 = out.iter().map(|(_, v)| v.to_number()).sum();
    assert_eq!(total, n_in as f64);
}

#[test]
fn combined_map_reduce_output_is_identical_to_uncombined() {
    // End-to-end mapReduce on the word-count corpus: combiner on vs off
    // must agree exactly, across worker counts, including output order.
    let items = corpus(8_000);
    for workers in [1, 2, 4, 8] {
        let options = RingMapOptions {
            workers,
            ..Default::default()
        };
        let on = map_reduce_with_combine(
            word_count_mapper(),
            word_count_reducer(),
            items.clone(),
            options,
            CombinePolicy::Auto,
        )
        .unwrap();
        let off = map_reduce_with_combine(
            word_count_mapper(),
            word_count_reducer(),
            items.clone(),
            options,
            CombinePolicy::Disabled,
        )
        .unwrap();
        assert_eq!(on, off, "workers={workers}");
    }
}

#[test]
fn auto_policy_combines_on_the_word_corpus() {
    // The default path (map_reduce → Auto) must actually engage the
    // combiner for the associative word-count reducer.
    let items = corpus(4_000);
    let before = metrics::SHUFFLE_PAIRS_COMBINED.get();
    let options = RingMapOptions {
        workers: 4,
        ..Default::default()
    };
    let out = snap_parallel::map_reduce_with_options(
        word_count_mapper(),
        word_count_reducer(),
        items,
        options,
    )
    .unwrap();
    assert!(!out.is_empty());
    // The corpus vocabulary is ~105 words; 4 chunks keep at most
    // 4 × 105 pairs, so at least 4000 − 420 must have been eliminated.
    let eliminated = metrics::SHUFFLE_PAIRS_COMBINED.get() - before;
    assert!(
        eliminated >= 4_000 - 4 * 105,
        "Auto policy barely combined: only {eliminated} pairs eliminated"
    );
}
