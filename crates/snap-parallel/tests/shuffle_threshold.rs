//! The `shuffle` auto-dispatch threshold boundary.
//!
//! `shuffle` routes inputs of `PARALLEL_SHUFFLE_THRESHOLD` (2048) pairs
//! or more through the parallel partition/sort/merge path and smaller
//! inputs through the sequential stable sort. These tests pin the
//! boundary: 2047/2048/2049 pairs must produce *identical* ordering on
//! both paths, and the snap-trace counters must show the parallel path
//! actually ran exactly when the threshold says so.

use snap_ast::Value;
use snap_parallel::{shuffle, shuffle_seq, PARALLEL_SHUFFLE_THRESHOLD};
use snap_trace::well_known as metrics;

/// Deterministic mixed-key workload with collisions: numbers, numeric
/// text, and case-varied words — the key shapes `snap_cmp` treats
/// loosely.
fn mixed_pairs(n: usize) -> Vec<(Value, Value)> {
    let words = ["alpha", "Beta", "beta", "GAMMA", "delta"];
    (0..n)
        .map(|i| {
            let key = match i % 4 {
                0 => Value::Number((i % 29) as f64),
                1 => Value::text(format!("{}", i % 23)), // numeric text
                2 => Value::text(words[i % words.len()]),
                _ => Value::text(words[(i * 7) % words.len()].to_uppercase()),
            };
            (key, Value::Number(i as f64))
        })
        .collect()
}

/// One test (not three) so the global trace counters are read without
/// interference from sibling tests running on other threads — this
/// integration binary contains no other test.
#[test]
fn threshold_boundary_dispatch_and_ordering() {
    assert_eq!(PARALLEL_SHUFFLE_THRESHOLD, 2048, "update the boundary");

    // --- 2047: one below the threshold → sequential path ------------
    let below = mixed_pairs(PARALLEL_SHUFFLE_THRESHOLD - 1);
    let parallel_before = metrics::SHUFFLE_PARALLEL_RUNS.get();
    let seq_before = metrics::SHUFFLE_SEQ_RUNS.get();
    let dispatched = shuffle(below.clone());
    assert_eq!(
        metrics::SHUFFLE_PARALLEL_RUNS.get(),
        parallel_before,
        "2047 pairs must not take the parallel path"
    );
    assert_eq!(
        metrics::SHUFFLE_SEQ_RUNS.get(),
        seq_before + 1,
        "2047 pairs must take the sequential path"
    );
    assert_eq!(dispatched, shuffle_seq(below), "2047: identical ordering");

    // --- 2048: at the threshold → parallel path ---------------------
    let at = mixed_pairs(PARALLEL_SHUFFLE_THRESHOLD);
    let parallel_before = metrics::SHUFFLE_PARALLEL_RUNS.get();
    let dispatched = shuffle(at.clone());
    assert_eq!(
        metrics::SHUFFLE_PARALLEL_RUNS.get(),
        parallel_before + 1,
        "2048 pairs must take the parallel path"
    );
    assert_eq!(dispatched, shuffle_seq(at), "2048: identical ordering");

    // --- 2049: one above → parallel path ----------------------------
    let above = mixed_pairs(PARALLEL_SHUFFLE_THRESHOLD + 1);
    let parallel_before = metrics::SHUFFLE_PARALLEL_RUNS.get();
    let dispatched = shuffle(above.clone());
    assert_eq!(
        metrics::SHUFFLE_PARALLEL_RUNS.get(),
        parallel_before + 1,
        "2049 pairs must take the parallel path"
    );
    assert_eq!(dispatched, shuffle_seq(above), "2049: identical ordering");

    // Both paths see every pair: the pair counter advanced by at least
    // the dispatched totals (shuffle_seq reference runs count too).
    assert!(metrics::SHUFFLE_PAIRS.get() >= (2047 + 2048 + 2049) as u64);
}
