//! # snap-parallel — the paper's parallel blocks
//!
//! The primary contribution of *"Parallel Programming with Pictures is a
//! Snap!"*: `parallelMap` (§3.2), `parallelForEach` (§3.3) and
//! `mapReduce` (§3.4), implemented with true parallelism on the
//! `snap-workers` substrate and pluggable into the `snap-vm` runtime via
//! [`WorkerBackend`].
//!
//! ```
//! use std::sync::Arc;
//! use snap_ast::builder::*;
//! use snap_ast::{Ring, Value};
//!
//! // parallelMap (( ) × 10) over [3, 7, 8] with 4 workers
//! let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
//! let out = snap_parallel::parallel_map(
//!     ring,
//!     vec![3.into(), 7.into(), 8.into()],
//!     4,
//! ).unwrap();
//! assert_eq!(out, vec![30.into(), 70.into(), 80.into()]);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod blocks;
pub mod distributed;
pub mod shuffle;
pub mod stream;

pub use backend::{install, install_with, WorkerBackend};
pub use blocks::{
    associative_fold_op, map_reduce, map_reduce_with_combine, map_reduce_with_options,
    map_reduce_with_policy, parallel_for_each, parallel_map, parallel_map_with_options,
    parallel_map_with_policy, CombinePolicy, COMBINE_MIN_PAIRS,
};
pub use distributed::{distributed_map, strong_scaling_sweep, ClusterSpec, DistributedOutcome};
pub use shuffle::{
    combine_pairs, shuffle, shuffle_parallel, shuffle_seq, PARALLEL_SHUFFLE_THRESHOLD,
};
pub use stream::{Emitter, Pipeline, StreamConfig, StreamStats};
