//! The worker-pool backend for the VM.
//!
//! Installing a [`WorkerBackend`] on a [`snap_vm::Vm`] switches its
//! `parallelMap`/`mapReduce` blocks from the sequential fallback to true
//! parallelism — the moment the paper's extended Snap! gains Web Workers.

use std::sync::Arc;

use snap_ast::{EvalError, Ring, Value};
use snap_vm::{ParallelBackend, Vm};
use snap_workers::{ExecMode, FaultPolicy, Isolation, RingMapOptions, Strategy};

use crate::blocks;

/// [`ParallelBackend`] implementation on OS-thread workers.
#[derive(Debug, Clone, Copy)]
pub struct WorkerBackend {
    /// Work-distribution strategy.
    pub strategy: Strategy,
    /// Boundary-crossing semantics (Copy = Web Worker structured clone).
    pub isolation: Isolation,
    /// Pooled (default) or spawn-per-call execution.
    pub exec: ExecMode,
    /// Fault policy applied to every block this backend runs. The
    /// default reproduces the pre-fault-tolerance behaviour.
    pub policy: FaultPolicy,
}

impl Default for WorkerBackend {
    fn default() -> Self {
        WorkerBackend {
            strategy: Strategy::Dynamic,
            isolation: Isolation::Copy,
            exec: ExecMode::Pooled,
            policy: FaultPolicy::default(),
        }
    }
}

impl WorkerBackend {
    /// The paper-faithful configuration: fresh workers per call.
    pub fn spawn_per_call() -> WorkerBackend {
        WorkerBackend {
            exec: ExecMode::SpawnPerCall,
            ..Default::default()
        }
    }

    /// Builder: run every block under `policy`.
    pub fn with_policy(mut self, policy: FaultPolicy) -> WorkerBackend {
        self.policy = policy;
        self
    }

    fn options(&self, workers: usize) -> RingMapOptions {
        RingMapOptions {
            workers,
            strategy: self.strategy,
            isolation: self.isolation,
            exec: self.exec,
            policy: self.policy,
            ..Default::default()
        }
    }
}

impl ParallelBackend for WorkerBackend {
    fn parallel_map(
        &self,
        ring: Arc<Ring>,
        items: Vec<Value>,
        workers: usize,
    ) -> Result<Vec<Value>, EvalError> {
        // Route through the block layer so the backend inherits its
        // degrade-to-sequential fault handling — a VM script never sees
        // a worker panic, only a slower answer or a deadline error.
        blocks::parallel_map_with_options(ring, items, self.options(workers))
    }

    fn map_reduce(
        &self,
        mapper: Arc<Ring>,
        reducer: Arc<Ring>,
        items: Vec<Value>,
        workers: usize,
    ) -> Result<Vec<Value>, EvalError> {
        blocks::map_reduce_with_options(mapper, reducer, items, self.options(workers))
    }

    fn name(&self) -> &'static str {
        "worker-pool"
    }
}

/// Install the true-parallel backend on a VM (in place).
pub fn install(vm: &mut Vm) {
    vm.world.set_backend(Arc::new(WorkerBackend::default()));
}

/// Install a specific backend configuration (execution mode, strategy,
/// isolation) on a VM.
pub fn install_with(vm: &mut Vm, backend: WorkerBackend) {
    vm.world.set_backend(Arc::new(backend));
}

/// Convenience: run a ring over items with the default backend (used by
/// benches that bypass the VM).
pub fn backend_parallel_map(
    ring: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
) -> Result<Vec<Value>, EvalError> {
    blocks::parallel_map(ring, items, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;
    use snap_ast::{Project, Script, SpriteDef};

    #[test]
    fn installed_backend_reports_worker_pool() {
        let project = Project::new("t").with_sprite(SpriteDef::new("S"));
        let mut vm = Vm::new(project);
        assert_eq!(vm.world.backend.name(), "sequential");
        install(&mut vm);
        assert_eq!(vm.world.backend.name(), "worker-pool");
    }

    #[test]
    fn vm_parallel_map_runs_on_workers_with_same_results() {
        let project = Project::new("t").with_sprite(SpriteDef::new("S").with_script(
            Script::on_green_flag(vec![say(parallel_map_with_workers(
                ring_reporter(mul(empty_slot(), num(10.0))),
                number_list([3.0, 7.0, 8.0]),
                num(4.0),
            ))]),
        ));
        let mut vm = Vm::new(project);
        install(&mut vm);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["[30, 70, 80]"]);
        assert!(vm.world.errors.is_empty());
    }

    #[test]
    fn vm_map_reduce_runs_on_workers() {
        let project = Project::new("t").with_sprite(SpriteDef::new("S").with_script(
            Script::on_green_flag(vec![say(map_reduce(
                ring_reporter_with(vec!["w"], make_list(vec![var("w"), num(1.0)])),
                ring_reporter_with(
                    vec!["vals"],
                    combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                ),
                split(text("b a b"), text(" ")),
            ))]),
        ));
        let mut vm = Vm::new(project);
        install(&mut vm);
        vm.green_flag();
        vm.run_until_idle();
        assert_eq!(vm.world.said(), vec!["[[a, 1], [b, 2]]"]);
    }

    #[test]
    fn sequential_and_parallel_backends_agree() {
        let expr = parallel_map_over(
            ring_reporter(add(pow(empty_slot(), num(2.0)), num(1.0))),
            numbers_from_to(num(1.0), num(50.0)),
        );
        let project = || Project::new("t").with_sprite(SpriteDef::new("S"));
        let mut seq_vm = Vm::new(project());
        let seq = seq_vm.eval_expr(Some("S"), &expr).unwrap();
        let mut par_vm = Vm::new(project());
        install(&mut par_vm);
        let par = par_vm.eval_expr(Some("S"), &expr).unwrap();
        assert_eq!(seq, par);
    }
}
