//! The streaming execution tier: pipeline skeletons over the pool.
//!
//! The batch blocks ([`crate::parallel_map`], [`crate::map_reduce`])
//! materialize their whole input per call, so continuous traffic pays
//! full startup, allocation, and shuffle cost per tick. A [`Pipeline`]
//! is the skeleton alternative: source → N stage nodes (map / filter /
//! flat-map / windowed reduce-by-key) → sink, where items flow as
//! *blocks* through bounded channels ([`snap_workers::channel`]) and
//! every node is a long-running job on the existing work-stealing
//! [`WorkerPool`](snap_workers::WorkerPool) — no new thread pools.
//!
//! Design points, in the order they matter:
//!
//! * **Backpressure, twice.** Each inter-stage channel holds at most
//!   `capacity` blocks (a full channel parks the producer), and a
//!   credit pool caps source-created blocks in flight at
//!   `max_in_flight` — so the ordered emitter's reorder buffer is
//!   bounded too, and peak memory is independent of stream length.
//! * **Ordered and unordered emitters.** Farm stages preserve their
//!   input block's sequence number 1:1 (a fully filtered block still
//!   travels, empty, to keep the sequence dense), so ordering reduces
//!   to one sink-side reorder buffer keyed by sequence number.
//!   [`Emitter::Unordered`] skips the buffer and emits on arrival.
//! * **Fast tiers reused.** An all-numeric source block travels as a
//!   flat `f64` columnar block; a batchable map stage runs one
//!   `eval_batch` per block with no per-element dispatch. Windowed
//!   reduce-by-key applies the map-side combiner
//!   ([`crate::associative_fold_op`]) per window before a sequential
//!   shuffle, exactly mirroring the batch `mapReduce` semantics.
//! * **Faults degrade one block.** A panicked block is retried per the
//!   [`FaultPolicy`], then salvaged item-by-item (injector-free); only
//!   items that panic on every attempt are dropped
//!   (`stream.items_dropped`) — the stream never stalls.
//! * **Telemetry throughout.** `stream.items_in/out`, `stream.blocks`,
//!   per-stage queue-depth gauges (`stream.stage<N>.queue_depth`), and
//!   an end-to-end `stream.latency_ns` histogram whose windowed
//!   p50/p95/p99 are served live on `/metrics`.
//!
//! A pipeline run degrades to an in-order sequential pass (identical
//! output, same block boundaries) when the caller is itself a pool
//! worker or the pool cannot host all stage jobs.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use snap_ast::pure::{compile_cached, PureFn};
use snap_ast::{BinOp, EvalError, Ring, Value};
use snap_trace::well_known as metrics;
use snap_workers::channel::{bounded, ChannelMonitor, Receiver, Sender};
use snap_workers::fault::injector;
use snap_workers::{as_map_pair, global_pool, ExecMode, FaultPolicy};

use crate::blocks::{associative_fold_op, COMBINE_MIN_PAIRS};
use crate::shuffle::{combine_pairs, shuffle_seq};

/// How the sink hands results to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Emitter {
    /// Reorder blocks by sequence number so the stream's output order
    /// equals the batch output order (bit-for-bit equivalence).
    #[default]
    Ordered,
    /// Emit blocks as they arrive — lower latency, arrival order.
    Unordered,
}

/// Configuration for a [`Pipeline`].
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Workers per farm stage (map / filter / flat-map). Reduce-by-key
    /// stages always run one worker — the window is sequential state.
    pub stage_workers: usize,
    /// Blocks each inter-stage channel may hold before the producer
    /// parks (backpressure).
    pub capacity: usize,
    /// Items packed into each source block.
    pub block_items: usize,
    /// Cap on source blocks in flight across the whole pipeline
    /// (channels, stage workers, and the reorder buffer together).
    /// `0` picks `capacity × (stages + 2)`.
    pub max_in_flight: usize,
    /// Ordered or unordered emission at the sink.
    pub emitter: Emitter,
    /// Per-block retry/salvage policy.
    pub policy: FaultPolicy,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            stage_workers: 1,
            capacity: 4,
            block_items: 512,
            max_in_flight: 0,
            emitter: Emitter::Ordered,
            policy: FaultPolicy::default(),
        }
    }
}

/// One stage node of a pipeline.
#[derive(Debug, Clone)]
enum StageOp {
    /// Apply the ring to every item (columnar when batchable).
    Map(Arc<Ring>),
    /// Keep items whose predicate ring reports truthy.
    Filter(Arc<Ring>),
    /// Apply the ring and splice list results into the stream.
    FlatMap(Arc<Ring>),
    /// Collect `[key, value]` pairs into windows of `window_items`
    /// pairs; per window: map-side combine (if the reducer is an
    /// associative fold), sequential shuffle, one reducer call per key.
    ReduceByKey {
        reducer: Arc<Ring>,
        window_items: usize,
    },
}

/// Per-run statistics, for tests and callers that assert bounds.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Items pulled from the source.
    pub items_in: u64,
    /// Items delivered to the sink.
    pub items_out: u64,
    /// Blocks created (source blocks plus reduce window outputs).
    pub blocks: u64,
    /// Reduce windows closed (including the end-of-stream flush).
    pub windows: u64,
    /// Blocks that exhausted their retry budget and were salvaged
    /// item-by-item.
    pub blocks_salvaged: u64,
    /// Items dropped because they panicked on every salvage attempt.
    pub items_dropped: u64,
    /// Configured per-channel capacity, for bound assertions.
    pub queue_capacity: usize,
    /// Peak depth observed on each inter-stage channel, source-side
    /// first. Empty when the run degraded to the sequential pass.
    pub peak_queue_depths: Vec<usize>,
    /// Whether the run degraded to the in-order sequential pass.
    pub sequential: bool,
}

/// A composable streaming pipeline skeleton. Build with the chained
/// stage methods, then [`Pipeline::run`] it over any item source.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: StreamConfig,
    stages: Vec<StageOp>,
}

// ---------------------------------------------------------------------
// Blocks and credits
// ---------------------------------------------------------------------

/// The payload of one block: boxed values, or a flat `f64` lane for
/// all-numeric blocks (the columnar fast path).
enum BlockData {
    Boxed(Vec<Value>),
    Columnar(Vec<f64>),
}

impl BlockData {
    fn len(&self) -> usize {
        match self {
            BlockData::Boxed(v) => v.len(),
            BlockData::Columnar(v) => v.len(),
        }
    }

    fn into_values(self) -> Vec<Value> {
        match self {
            BlockData::Boxed(v) => v,
            BlockData::Columnar(v) => v.into_iter().map(Value::Number).collect(),
        }
    }
}

struct Block {
    seq: u64,
    born: Instant,
    data: BlockData,
    /// Held while a source-created block is in flight; dropping it
    /// (absorbing the block into a window, emitting at the sink)
    /// returns the credit to the source.
    credit: Option<CreditToken>,
}

/// A counting semaphore bounding source blocks in flight. `close`
/// releases every waiter empty-handed (abort path).
struct Credits {
    state: Mutex<(usize, bool)>,
    available: Condvar,
}

impl Credits {
    fn new(count: usize) -> Arc<Credits> {
        Arc::new(Credits {
            state: Mutex::new((count.max(1), false)),
            available: Condvar::new(),
        })
    }

    fn acquire(self: &Arc<Credits>) -> Option<CreditToken> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.1 {
                return None;
            }
            if state.0 > 0 {
                state.0 -= 1;
                return Some(CreditToken {
                    credits: Arc::clone(self),
                });
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Take a credit only if one is free — used by reduce stages for
    /// their window outputs, so window blocks respect the in-flight
    /// bound when possible without risking a producer/consumer cycle.
    fn try_acquire(self: &Arc<Credits>) -> Option<CreditToken> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !state.1 && state.0 > 0 {
            state.0 -= 1;
            return Some(CreditToken {
                credits: Arc::clone(self),
            });
        }
        None
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).1 = true;
        self.available.notify_all();
    }
}

struct CreditToken {
    credits: Arc<Credits>,
}

impl Drop for CreditToken {
    fn drop(&mut self) {
        let mut state = self
            .credits
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.0 += 1;
        drop(state);
        self.credits.available.notify_one();
    }
}

/// Counts jobs that have fully returned, so `run_each` never unwinds
/// its stack frame (which the jobs borrow) while a job is live. The
/// guard arrives on drop, which covers jobs the pool refused to run.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Latch> {
        Arc::new(Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        })
    }

    fn guard(self: &Arc<Latch>) -> LatchGuard {
        LatchGuard {
            latch: Arc::clone(self),
        }
    }

    fn wait(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct LatchGuard {
    latch: Arc<Latch>,
}

impl Drop for LatchGuard {
    fn drop(&mut self) {
        let mut remaining = self
            .latch
            .remaining
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *remaining -= 1;
        if *remaining == 0 {
            self.latch.done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// Per-run shared state and counters
// ---------------------------------------------------------------------

#[derive(Default)]
struct RunCounters {
    items_in: AtomicU64,
    items_out: AtomicU64,
    blocks: AtomicU64,
    windows: AtomicU64,
    blocks_salvaged: AtomicU64,
    items_dropped: AtomicU64,
}

struct Shared {
    counters: RunCounters,
    error: Mutex<Option<EvalError>>,
    aborted: AtomicBool,
    monitors: Vec<ChannelMonitor<Block>>,
    credits: Arc<Credits>,
}

impl Shared {
    /// Record the first error and tear the pipeline down: close the
    /// credit gate and poison every channel so every blocked job wakes.
    fn abort(&self, err: EvalError) {
        {
            let mut slot = self.error.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
        self.credits.close();
        for monitor in &self.monitors {
            monitor.poison();
        }
    }

    fn aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------
// Stage execution
// ---------------------------------------------------------------------

/// A farm stage's per-worker executor: the compiled ring plus the
/// fault-guarded block transform. Stateless across blocks, so every
/// worker of a farm holds its own.
struct FarmExec<'a> {
    op: &'a StageOp,
    f: PureFn,
    policy: FaultPolicy,
    counters: &'a RunCounters,
}

impl<'a> FarmExec<'a> {
    fn new(
        op: &'a StageOp,
        policy: FaultPolicy,
        counters: &'a RunCounters,
    ) -> Result<Self, EvalError> {
        let ring = match op {
            StageOp::Map(r) | StageOp::Filter(r) | StageOp::FlatMap(r) => r,
            StageOp::ReduceByKey { .. } => unreachable!("reduce stages use ReduceExec"),
        };
        Ok(FarmExec {
            op,
            f: compile_cached(ring)?,
            policy,
            counters,
        })
    }

    /// Transform one block, preserving its sequence number and credit.
    /// Panics retry per the policy, then degrade to per-item salvage.
    fn feed(&self, block: Block) -> Result<Block, EvalError> {
        let Block {
            seq,
            born,
            data,
            credit,
        } = block;
        let inj = injector();
        let mut attempt = 0u32;
        let out = loop {
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(inj) = &inj {
                    inj.inject(seq, attempt);
                }
                self.transform(&data)
            }));
            match result {
                Ok(out) => break out?,
                Err(_) => {
                    metrics::POOL_JOBS_PANICKED.incr();
                    if attempt < self.policy.retries {
                        metrics::FAULT_RETRIES_SCHEDULED.incr();
                        std::thread::sleep(self.policy.backoff_for(attempt));
                        attempt += 1;
                    } else {
                        metrics::FAULT_FAILURES_FINAL.incr();
                        break self.salvage(&data)?;
                    }
                }
            }
        };
        Ok(Block {
            seq,
            born,
            data: out,
            credit,
        })
    }

    /// The whole-block transform. Columnar blocks stay columnar through
    /// batchable maps and filters; everything else goes per item.
    fn transform(&self, data: &BlockData) -> Result<BlockData, EvalError> {
        match (self.op, data) {
            (StageOp::Map(_), BlockData::Columnar(xs)) if self.f.is_batchable() => {
                metrics::PAR_COLUMNAR_CHUNKS.incr();
                let mut out = Vec::with_capacity(xs.len());
                let batched = self.f.eval_batch(xs, &mut out);
                debug_assert!(batched, "is_batchable implies eval_batch succeeds");
                Ok(BlockData::Columnar(out))
            }
            (StageOp::Map(_), BlockData::Columnar(xs)) => {
                let mut out = Vec::with_capacity(xs.len());
                for &x in xs {
                    out.push(self.f.call1(Value::Number(x))?.deep_copy());
                }
                Ok(BlockData::Boxed(out))
            }
            (StageOp::Map(_), BlockData::Boxed(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.f.call1(item.deep_copy())?.deep_copy());
                }
                Ok(BlockData::Boxed(out))
            }
            (StageOp::Filter(_), BlockData::Columnar(xs)) => {
                let mut out = Vec::with_capacity(xs.len());
                for &x in xs {
                    if self.f.call1(Value::Number(x))?.to_bool() {
                        out.push(x);
                    }
                }
                Ok(BlockData::Columnar(out))
            }
            (StageOp::Filter(_), BlockData::Boxed(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    if self.f.call1(item.deep_copy())?.to_bool() {
                        out.push(item.deep_copy());
                    }
                }
                Ok(BlockData::Boxed(out))
            }
            (StageOp::FlatMap(_), data) => {
                let mut out = Vec::new();
                match data {
                    BlockData::Boxed(items) => {
                        for item in items {
                            splice(self.f.call1(item.deep_copy())?, &mut out);
                        }
                    }
                    BlockData::Columnar(xs) => {
                        for &x in xs {
                            splice(self.f.call1(Value::Number(x))?, &mut out);
                        }
                    }
                }
                Ok(BlockData::Boxed(out))
            }
            (StageOp::ReduceByKey { .. }, _) => unreachable!("reduce stages use ReduceExec"),
        }
    }

    /// The per-item degradation pass: injector-free, one catch per
    /// item. Items that still panic are dropped; the block survives.
    fn salvage(&self, data: &BlockData) -> Result<BlockData, EvalError> {
        metrics::STREAM_BLOCKS_SALVAGED.incr();
        self.counters
            .blocks_salvaged
            .fetch_add(1, Ordering::Relaxed);
        snap_trace::note(
            "stream.block_salvaged",
            format!("salvaging a {}-item block item-by-item", data.len()),
        );
        let mut out = Vec::with_capacity(data.len());
        let mut dropped = 0u64;
        let mut one = |item: Value| {
            let result = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Value>, EvalError> {
                match self.op {
                    StageOp::Map(_) => Ok(vec![self.f.call1(item.deep_copy())?.deep_copy()]),
                    StageOp::Filter(_) => Ok(if self.f.call1(item.deep_copy())?.to_bool() {
                        vec![item.deep_copy()]
                    } else {
                        Vec::new()
                    }),
                    StageOp::FlatMap(_) => {
                        let mut spliced = Vec::new();
                        splice(self.f.call1(item.deep_copy())?, &mut spliced);
                        Ok(spliced)
                    }
                    StageOp::ReduceByKey { .. } => unreachable!(),
                }
            }));
            match result {
                Ok(Ok(values)) => {
                    out.extend(values);
                    Ok(())
                }
                Ok(Err(e)) => Err(e),
                Err(_) => {
                    metrics::POOL_JOBS_PANICKED.incr();
                    metrics::FAULT_FAILURES_FINAL.incr();
                    dropped += 1;
                    Ok(())
                }
            }
        };
        match data {
            BlockData::Boxed(items) => {
                for item in items {
                    one(item.clone())?;
                }
            }
            BlockData::Columnar(xs) => {
                for &x in xs {
                    one(Value::Number(x))?;
                }
            }
        }
        if dropped > 0 {
            metrics::STREAM_ITEMS_DROPPED.add(dropped);
            self.counters
                .items_dropped
                .fetch_add(dropped, Ordering::Relaxed);
        }
        Ok(BlockData::Boxed(out))
    }
}

/// Appends a flat-map result: list results are spliced element-wise,
/// anything else passes through as a single item.
fn splice(result: Value, out: &mut Vec<Value>) {
    match result.as_list() {
        Some(list) => {
            for i in 1..=list.len() {
                if let Some(v) = list.item(i) {
                    out.push(v.deep_copy());
                }
            }
        }
        None => out.push(result.deep_copy()),
    }
}

/// The windowed reduce-by-key stage: single-worker, sequential window
/// state. Input blocks are re-ordered by sequence number first, so
/// window contents are deterministic regardless of upstream farm
/// widths; output blocks get fresh, dense sequence numbers.
struct ReduceExec<'a> {
    f: PureFn,
    fold: Option<BinOp>,
    window_items: usize,
    policy: FaultPolicy,
    counters: &'a RunCounters,
    pending: Vec<(Value, Value)>,
    /// (block born, pairs remaining from that block) — tracks the
    /// oldest contributor so window latency is measured from the
    /// earliest absorbed block.
    origins: VecDeque<(Instant, usize)>,
    next_in_seq: u64,
    reorder: BTreeMap<u64, Block>,
    out_seq: u64,
}

impl<'a> ReduceExec<'a> {
    fn new(
        reducer: &Arc<Ring>,
        window_items: usize,
        policy: FaultPolicy,
        counters: &'a RunCounters,
    ) -> Result<Self, EvalError> {
        Ok(ReduceExec {
            f: compile_cached(reducer)?,
            fold: associative_fold_op(reducer),
            window_items: window_items.max(1),
            policy,
            counters,
            pending: Vec::new(),
            origins: VecDeque::new(),
            next_in_seq: 0,
            reorder: BTreeMap::new(),
            out_seq: 0,
        })
    }

    fn feed(&mut self, block: Block, credits: &Arc<Credits>) -> Result<Vec<Block>, EvalError> {
        self.reorder.insert(block.seq, block);
        let mut out = Vec::new();
        while let Some(block) = self.reorder.remove(&self.next_in_seq) {
            self.next_in_seq += 1;
            self.absorb(block)?;
            while self.pending.len() >= self.window_items {
                let window = self.close_window(self.window_items, credits)?;
                out.push(window);
            }
        }
        Ok(out)
    }

    fn absorb(&mut self, block: Block) -> Result<(), EvalError> {
        let born = block.born;
        let values = block.data.into_values();
        // The block's credit drops here: its items now live in the
        // window accumulator, not in any channel.
        drop(block.credit);
        if values.is_empty() {
            return Ok(());
        }
        self.origins.push_back((born, values.len()));
        for value in values {
            self.pending.push(as_map_pair(value)?);
        }
        Ok(())
    }

    fn finish(&mut self, credits: &Arc<Credits>) -> Result<Option<Block>, EvalError> {
        // An aborted upstream may leave sequence gaps; drain whatever
        // arrived so the abort error (not a hang) reaches the caller.
        let leftover: Vec<u64> = self.reorder.keys().copied().collect();
        for seq in leftover {
            let block = self.reorder.remove(&seq).expect("key just listed");
            self.absorb(block)?;
            while self.pending.len() >= self.window_items {
                let _ = self.close_window(self.window_items, credits)?;
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let len = self.pending.len();
        Ok(Some(self.close_window(len, credits)?))
    }

    fn close_window(&mut self, take: usize, credits: &Arc<Credits>) -> Result<Block, EvalError> {
        let pairs: Vec<(Value, Value)> = self.pending.drain(..take).collect();
        let born = self
            .origins
            .front()
            .map(|(b, _)| *b)
            .unwrap_or_else(Instant::now);
        let mut to_consume = take;
        while to_consume > 0 {
            let Some(front) = self.origins.front_mut() else {
                break;
            };
            if front.1 > to_consume {
                front.1 -= to_consume;
                break;
            }
            to_consume -= front.1;
            self.origins.pop_front();
        }
        metrics::STREAM_WINDOWS.incr();
        self.counters.windows.fetch_add(1, Ordering::Relaxed);

        let inj = injector();
        let seq = self.out_seq;
        let mut attempt = 0u32;
        let items = loop {
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(inj) = &inj {
                    // Key window injections away from block keys so a
                    // seeded injector exercises both independently.
                    inj.inject(u64::MAX - seq, attempt);
                }
                self.compute(&pairs)
            }));
            match result {
                Ok(items) => break items?,
                Err(_) => {
                    metrics::POOL_JOBS_PANICKED.incr();
                    if attempt < self.policy.retries {
                        metrics::FAULT_RETRIES_SCHEDULED.incr();
                        std::thread::sleep(self.policy.backoff_for(attempt));
                        attempt += 1;
                    } else {
                        metrics::FAULT_FAILURES_FINAL.incr();
                        // Injector-free last chance; a window that still
                        // panics is dropped whole (empty block keeps the
                        // output sequence dense).
                        match catch_unwind(AssertUnwindSafe(|| self.compute(&pairs))) {
                            Ok(items) => {
                                metrics::STREAM_BLOCKS_SALVAGED.incr();
                                self.counters
                                    .blocks_salvaged
                                    .fetch_add(1, Ordering::Relaxed);
                                break items?;
                            }
                            Err(_) => {
                                metrics::POOL_JOBS_PANICKED.incr();
                                metrics::STREAM_ITEMS_DROPPED.add(take as u64);
                                self.counters
                                    .items_dropped
                                    .fetch_add(take as u64, Ordering::Relaxed);
                                break Vec::new();
                            }
                        }
                    }
                }
            }
        };
        self.out_seq += 1;
        metrics::STREAM_BLOCKS.incr();
        self.counters.blocks.fetch_add(1, Ordering::Relaxed);
        Ok(Block {
            seq,
            born,
            data: BlockData::Boxed(items),
            credit: credits.try_acquire(),
        })
    }

    /// One window: combine (associative reducers), sequential shuffle,
    /// one reducer call per key — the batch `mapReduce` semantics over
    /// the window's pairs.
    fn compute(&self, pairs: &[(Value, Value)]) -> Result<Vec<Value>, EvalError> {
        let owned: Vec<(Value, Value)> = pairs.to_vec();
        let combined = match self.fold {
            Some(op) if owned.len() >= COMBINE_MIN_PAIRS => {
                combine_pairs(owned, op, 1, ExecMode::Pooled)
            }
            _ => owned,
        };
        let groups = shuffle_seq(combined);
        let mut out = Vec::with_capacity(groups.len());
        for (key, values) in groups {
            let arg = Value::list(values.iter().map(Value::deep_copy).collect());
            let reduced = self.f.call1(arg)?;
            out.push(Value::list(vec![key, reduced.deep_copy()]));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------

/// What each pool job does, handed out by index.
enum JobRole<'src> {
    Source {
        tx: Sender<Block>,
        items: Box<dyn Iterator<Item = Value> + Send + 'src>,
    },
    Stage {
        stage: usize,
        rx: Receiver<Block>,
        tx: Sender<Block>,
    },
}

impl Pipeline {
    /// An empty pipeline under `config`; add stages with the builder
    /// methods.
    pub fn new(config: StreamConfig) -> Pipeline {
        Pipeline {
            config,
            stages: Vec::new(),
        }
    }

    /// Append a map stage (a farm of `stage_workers` workers).
    pub fn map(mut self, ring: Arc<Ring>) -> Pipeline {
        self.stages.push(StageOp::Map(ring));
        self
    }

    /// Append a filter stage keeping items whose predicate is truthy.
    pub fn filter(mut self, ring: Arc<Ring>) -> Pipeline {
        self.stages.push(StageOp::Filter(ring));
        self
    }

    /// Append a flat-map stage: list results are spliced item-wise.
    pub fn flat_map(mut self, ring: Arc<Ring>) -> Pipeline {
        self.stages.push(StageOp::FlatMap(ring));
        self
    }

    /// Append a windowed reduce-by-key stage: every `window_items`
    /// `[key, value]` pairs are shuffled and reduced (one reducer call
    /// per key), emitting the window's `[key, reduced]` pairs.
    pub fn reduce_by_key(mut self, reducer: Arc<Ring>, window_items: usize) -> Pipeline {
        self.stages.push(StageOp::ReduceByKey {
            reducer,
            window_items,
        });
        self
    }

    /// Run the pipeline over `items`, collecting every sink item.
    pub fn run<I>(&self, items: I) -> Result<Vec<Value>, EvalError>
    where
        I: IntoIterator<Item = Value>,
        I::IntoIter: Send,
    {
        self.run_with_stats(items).map(|(values, _)| values)
    }

    /// [`Pipeline::run`], also returning the run's [`StreamStats`].
    pub fn run_with_stats<I>(&self, items: I) -> Result<(Vec<Value>, StreamStats), EvalError>
    where
        I: IntoIterator<Item = Value>,
        I::IntoIter: Send,
    {
        let mut out = Vec::new();
        let stats = self.run_each(items, |value| out.push(value))?;
        Ok((out, stats))
    }

    /// Run the pipeline, invoking `sink` for every output item on the
    /// calling thread. This is the full streaming path: long-running
    /// source and stage jobs on the shared pool, bounded channels in
    /// between, the caller draining the final channel.
    pub fn run_each<I>(
        &self,
        items: I,
        mut sink: impl FnMut(Value),
    ) -> Result<StreamStats, EvalError>
    where
        I: IntoIterator<Item = Value>,
        I::IntoIter: Send,
    {
        let _span = snap_trace::span!("stream.run", "stages" => self.stages.len());
        let config = self.normalized_config();
        let source = items.into_iter();
        let pool = global_pool();
        let total_jobs = 1 + self
            .stages
            .iter()
            .map(|op| self.farm_width(op, &config))
            .sum::<usize>();
        // Long-running stage jobs occupy workers for the whole stream:
        // grow the pool so they cannot starve concurrent batch work,
        // and degrade to the sequential pass when that is impossible
        // (worker-count ceiling, nested call from a pool worker).
        pool.ensure_workers(pool.workers() + total_jobs);
        if pool.on_worker_thread() || pool.workers() < total_jobs + 1 {
            return self.run_sequential(source, &mut sink);
        }

        // --- Build the channel graph: stages + 1 edges. ---
        let n_edges = self.stages.len() + 1;
        let mut txs: Vec<Option<Sender<Block>>> = Vec::with_capacity(n_edges);
        let mut rxs: Vec<Option<Receiver<Block>>> = Vec::with_capacity(n_edges);
        let mut monitors = Vec::with_capacity(n_edges);
        for edge in 0..n_edges {
            let gauge_name = if edge < self.stages.len() {
                format!("stream.stage{edge}.queue_depth")
            } else {
                "stream.sink.queue_depth".to_string()
            };
            let (tx, rx) = bounded(config.capacity, Some(snap_trace::gauge_owned(gauge_name)));
            monitors.push(tx.monitor());
            txs.push(Some(tx));
            rxs.push(Some(rx));
        }

        let shared = Shared {
            counters: RunCounters::default(),
            error: Mutex::new(None),
            aborted: AtomicBool::new(false),
            monitors,
            credits: Credits::new(config.max_in_flight),
        };

        // --- Hand out job roles. ---
        let mut roles: Vec<Mutex<Option<JobRole<'_>>>> = Vec::with_capacity(total_jobs);
        roles.push(Mutex::new(Some(JobRole::Source {
            tx: txs[0].take().expect("source edge"),
            items: Box::new(source),
        })));
        for (stage, op) in self.stages.iter().enumerate() {
            let rx = rxs[stage].take().expect("stage input edge");
            let tx = txs[stage + 1].take().expect("stage output edge");
            let width = self.farm_width(op, &config);
            for _ in 0..width {
                roles.push(Mutex::new(Some(JobRole::Stage {
                    stage,
                    rx: rx.clone(),
                    tx: tx.clone(),
                })));
            }
            // The originals drop here so end-of-stream propagates once
            // every farm worker has dropped its clones.
            drop(rx);
            drop(tx);
        }
        let sink_rx = rxs[self.stages.len()].take().expect("sink edge");
        drop(txs);
        drop(rxs);

        // --- Launch every node as a pool job. ---
        let runner: &(dyn Fn(usize) + Sync) =
            &|idx| self.execute_job(idx, &roles, &shared, &config);
        // SAFETY: the 'static lifetime is a lie told only to the job
        // queue. Every submitted job owns a LatchGuard that arrives on
        // drop (normal return, panic, or the pool refusing the job),
        // and `run_each` blocks on the latch before this frame — which
        // `roles` and `shared` borrow — is torn down.
        let runner_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(runner) };
        let latch = Latch::new(total_jobs);
        for idx in 0..total_jobs {
            let guard = latch.guard();
            let submitted = pool.execute(move || {
                let _guard = guard;
                runner_static(idx);
            });
            if submitted.is_err() {
                // Shutdown race: wake everything, surface an error.
                shared.abort(EvalError::Other(
                    "stream: worker pool shut down while launching stage jobs".into(),
                ));
            }
        }

        // --- The sink: drain, reorder if asked, emit. ---
        let mut expected_seq = 0u64;
        let mut reorder: BTreeMap<u64, Block> = BTreeMap::new();
        let emit = |block: Block, sink: &mut dyn FnMut(Value)| {
            let latency = block.born.elapsed().as_nanos() as u64;
            metrics::STREAM_LATENCY_NS.record(latency);
            for value in block.data.into_values() {
                metrics::STREAM_ITEMS_OUT.incr();
                shared.counters.items_out.fetch_add(1, Ordering::Relaxed);
                sink(value);
            }
            // block.credit drops here: the block has left the pipeline.
        };
        while let Some(block) = sink_rx.recv() {
            match config.emitter {
                Emitter::Unordered => emit(block, &mut sink),
                Emitter::Ordered => {
                    reorder.insert(block.seq, block);
                    while let Some(block) = reorder.remove(&expected_seq) {
                        expected_seq += 1;
                        emit(block, &mut sink);
                    }
                }
            }
        }
        // End-of-stream. On a clean run the reorder buffer is already
        // empty (sequences are dense); after an abort it may hold
        // stragglers — emit them in order anyway, the error wins below.
        for (_, block) in std::mem::take(&mut reorder) {
            emit(block, &mut sink);
        }
        drop(sink_rx);
        latch.wait();

        if let Some(err) = shared
            .error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            return Err(err);
        }
        let counters = &shared.counters;
        Ok(StreamStats {
            items_in: counters.items_in.load(Ordering::Relaxed),
            items_out: counters.items_out.load(Ordering::Relaxed),
            blocks: counters.blocks.load(Ordering::Relaxed),
            windows: counters.windows.load(Ordering::Relaxed),
            blocks_salvaged: counters.blocks_salvaged.load(Ordering::Relaxed),
            items_dropped: counters.items_dropped.load(Ordering::Relaxed),
            queue_capacity: config.capacity,
            peak_queue_depths: shared.monitors.iter().map(|m| m.peak_depth()).collect(),
            sequential: false,
        })
    }

    /// Clamped, defaulted copy of the configuration.
    fn normalized_config(&self) -> StreamConfig {
        let mut config = self.config;
        config.stage_workers = config.stage_workers.clamp(1, 8);
        config.capacity = config.capacity.max(1);
        config.block_items = config.block_items.max(1);
        if config.max_in_flight == 0 {
            config.max_in_flight = config.capacity * (self.stages.len() + 2);
        }
        config
    }

    fn farm_width(&self, op: &StageOp, config: &StreamConfig) -> usize {
        match op {
            StageOp::ReduceByKey { .. } => 1,
            _ => config.stage_workers,
        }
    }

    /// Job dispatch: index 0 is the source, the rest are stage workers
    /// in declaration order. Catches panics so an unexpected unwind
    /// aborts the stream instead of hanging it.
    fn execute_job(
        &self,
        idx: usize,
        roles: &[Mutex<Option<JobRole<'_>>>],
        shared: &Shared,
        config: &StreamConfig,
    ) {
        let role = roles[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        let Some(role) = role else { return };
        let result = catch_unwind(AssertUnwindSafe(|| match role {
            JobRole::Source { tx, items } => self.pump_source(tx, items, shared, config),
            JobRole::Stage { stage, rx, tx } => match &self.stages[stage] {
                StageOp::ReduceByKey {
                    reducer,
                    window_items,
                } => self.run_reduce(reducer, *window_items, rx, tx, shared, config),
                op => self.run_farm(op, rx, tx, shared, config),
            },
        }));
        match result {
            Ok(Ok(())) => {}
            Ok(Err(e)) => shared.abort(e),
            Err(payload) => {
                metrics::POOL_JOBS_PANICKED.incr();
                shared.abort(EvalError::Other(format!(
                    "stream: a pipeline job panicked: {}",
                    snap_workers::panic_message(payload.as_ref())
                )));
            }
        }
    }

    /// The source node: pull items, pack blocks (columnar when the
    /// whole block is numeric), acquire a credit per block, send.
    fn pump_source(
        &self,
        tx: Sender<Block>,
        items: Box<dyn Iterator<Item = Value> + Send + '_>,
        shared: &Shared,
        config: &StreamConfig,
    ) -> Result<(), EvalError> {
        let mut buf: Vec<Value> = Vec::with_capacity(config.block_items);
        let mut numeric = true;
        let mut seq = 0u64;
        let flush = |buf: &mut Vec<Value>, numeric: bool, seq: &mut u64| -> bool {
            if buf.is_empty() {
                return true;
            }
            let Some(credit) = shared.credits.acquire() else {
                return false; // aborted
            };
            let data = if numeric {
                BlockData::Columnar(buf.drain(..).map(|v| v.to_number()).collect())
            } else {
                BlockData::Boxed(std::mem::take(buf))
            };
            metrics::STREAM_BLOCKS.incr();
            shared.counters.blocks.fetch_add(1, Ordering::Relaxed);
            let block = Block {
                seq: *seq,
                born: Instant::now(),
                data,
                credit: Some(credit),
            };
            *seq += 1;
            tx.send(block).is_ok()
        };
        for item in items {
            if shared.aborted() {
                return Ok(());
            }
            metrics::STREAM_ITEMS_IN.incr();
            shared.counters.items_in.fetch_add(1, Ordering::Relaxed);
            numeric &= matches!(item, Value::Number(_));
            buf.push(item);
            if buf.len() >= config.block_items {
                if !flush(&mut buf, numeric, &mut seq) {
                    return Ok(());
                }
                numeric = true;
            }
        }
        flush(&mut buf, numeric, &mut seq);
        Ok(()) // tx drops here → end-of-stream downstream
    }

    /// One farm worker: receive, transform (fault-guarded), send.
    fn run_farm(
        &self,
        op: &StageOp,
        rx: Receiver<Block>,
        tx: Sender<Block>,
        shared: &Shared,
        config: &StreamConfig,
    ) -> Result<(), EvalError> {
        let exec = FarmExec::new(op, config.policy, &shared.counters)?;
        while let Some(block) = rx.recv() {
            let out = exec.feed(block)?;
            if tx.send(out).is_err() {
                return Ok(()); // poisoned: the abort error wins
            }
        }
        Ok(())
    }

    /// The reduce node (always one worker): reorder by sequence,
    /// window, combine + shuffle + reduce per window.
    fn run_reduce(
        &self,
        reducer: &Arc<Ring>,
        window_items: usize,
        rx: Receiver<Block>,
        tx: Sender<Block>,
        shared: &Shared,
        config: &StreamConfig,
    ) -> Result<(), EvalError> {
        let mut exec = ReduceExec::new(reducer, window_items, config.policy, &shared.counters)?;
        while let Some(block) = rx.recv() {
            for out in exec.feed(block, &shared.credits)? {
                if tx.send(out).is_err() {
                    return Ok(());
                }
            }
        }
        if let Some(tail) = exec.finish(&shared.credits)? {
            let _ = tx.send(tail);
        }
        Ok(())
    }

    /// The degraded path: the same block boundaries, stage order, and
    /// window drains as the pooled run, executed in order on the
    /// calling thread — output is identical to an ordered pooled run.
    fn run_sequential(
        &self,
        source: impl Iterator<Item = Value>,
        sink: &mut impl FnMut(Value),
    ) -> Result<StreamStats, EvalError> {
        let _span = snap_trace::span!("stream.run_sequential");
        let config = self.normalized_config();
        let counters = RunCounters::default();
        let credits = Credits::new(config.max_in_flight);
        let mut farms: Vec<Option<FarmExec<'_>>> = Vec::new();
        let mut reduces: Vec<Option<ReduceExec<'_>>> = Vec::new();
        for op in &self.stages {
            match op {
                StageOp::ReduceByKey {
                    reducer,
                    window_items,
                } => {
                    farms.push(None);
                    reduces.push(Some(ReduceExec::new(
                        reducer,
                        *window_items,
                        config.policy,
                        &counters,
                    )?));
                }
                op => {
                    farms.push(Some(FarmExec::new(op, config.policy, &counters)?));
                    reduces.push(None);
                }
            }
        }
        let mut emit = |block: Block| {
            metrics::STREAM_LATENCY_NS.record(block.born.elapsed().as_nanos() as u64);
            for value in block.data.into_values() {
                metrics::STREAM_ITEMS_OUT.incr();
                counters.items_out.fetch_add(1, Ordering::Relaxed);
                sink(value);
            }
        };

        let mut buf: Vec<Value> = Vec::with_capacity(config.block_items);
        let mut numeric = true;
        let mut seq = 0u64;
        for item in source {
            metrics::STREAM_ITEMS_IN.incr();
            counters.items_in.fetch_add(1, Ordering::Relaxed);
            numeric &= matches!(item, Value::Number(_));
            buf.push(item);
            if buf.len() >= config.block_items {
                let block = pack_block(&mut buf, numeric, &mut seq, &counters);
                numeric = true;
                push_through(
                    &self.stages,
                    &farms,
                    &mut reduces,
                    &credits,
                    block,
                    0,
                    &mut emit,
                )?;
            }
        }
        if !buf.is_empty() {
            let block = pack_block(&mut buf, numeric, &mut seq, &counters);
            push_through(
                &self.stages,
                &farms,
                &mut reduces,
                &credits,
                block,
                0,
                &mut emit,
            )?;
        }
        // Flush reduce windows front-to-back: a tail window flushed at
        // stage `i` still flows through stages `i+1..`.
        for stage in 0..self.stages.len() {
            let tail = match reduces[stage].as_mut() {
                Some(reduce) => reduce.finish(&credits)?,
                None => None,
            };
            if let Some(block) = tail {
                push_through(
                    &self.stages,
                    &farms,
                    &mut reduces,
                    &credits,
                    block,
                    stage + 1,
                    &mut emit,
                )?;
            }
        }
        Ok(StreamStats {
            items_in: counters.items_in.load(Ordering::Relaxed),
            items_out: counters.items_out.load(Ordering::Relaxed),
            blocks: counters.blocks.load(Ordering::Relaxed),
            windows: counters.windows.load(Ordering::Relaxed),
            blocks_salvaged: counters.blocks_salvaged.load(Ordering::Relaxed),
            items_dropped: counters.items_dropped.load(Ordering::Relaxed),
            queue_capacity: config.capacity,
            peak_queue_depths: Vec::new(),
            sequential: true,
        })
    }
}

/// Route one block through stages `from_stage..` of the sequential
/// pass, emitting whatever reaches the end.
fn push_through<'a>(
    stages: &[StageOp],
    farms: &[Option<FarmExec<'a>>],
    reduces: &mut [Option<ReduceExec<'a>>],
    credits: &Arc<Credits>,
    block: Block,
    from_stage: usize,
    emit: &mut impl FnMut(Block),
) -> Result<(), EvalError> {
    let mut wave = vec![block];
    for stage in from_stage..stages.len() {
        let mut next = Vec::with_capacity(wave.len());
        for block in wave {
            if let Some(farm) = &farms[stage] {
                next.push(farm.feed(block)?);
            } else if let Some(reduce) = reduces[stage].as_mut() {
                next.extend(reduce.feed(block, credits)?);
            }
        }
        wave = next;
    }
    for block in wave {
        emit(block);
    }
    Ok(())
}

/// Pack the buffered items into a block (sequential path — no credit
/// gate needed, nothing is concurrent).
fn pack_block(buf: &mut Vec<Value>, numeric: bool, seq: &mut u64, counters: &RunCounters) -> Block {
    let data = if numeric {
        BlockData::Columnar(buf.drain(..).map(|v| v.to_number()).collect())
    } else {
        BlockData::Boxed(std::mem::take(buf))
    };
    metrics::STREAM_BLOCKS.incr();
    counters.blocks.fetch_add(1, Ordering::Relaxed);
    let block = Block {
        seq: *seq,
        born: Instant::now(),
        data,
        credit: None,
    };
    *seq += 1;
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;

    fn times_ten() -> Arc<Ring> {
        Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
    }

    fn word_count_mapper() -> Arc<Ring> {
        Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ))
    }

    fn word_count_reducer() -> Arc<Ring> {
        Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ))
    }

    #[test]
    fn numeric_map_stream_matches_batch() {
        let items: Vec<Value> = (0..1000).map(|n| Value::Number(n as f64)).collect();
        let pipeline = Pipeline::new(StreamConfig {
            block_items: 64,
            ..Default::default()
        })
        .map(times_ten());
        let (streamed, stats) = pipeline.run_with_stats(items.clone()).unwrap();
        let batch = crate::parallel_map(times_ten(), items, 4).unwrap();
        assert_eq!(streamed, batch);
        assert_eq!(stats.items_in, 1000);
        assert_eq!(stats.items_out, 1000);
        assert_eq!(stats.blocks, 1000 / 64 + 1);
        assert!(!stats.sequential);
    }

    #[test]
    fn columnar_blocks_flow_through_batchable_stages() {
        let before = metrics::PAR_COLUMNAR_CHUNKS.get();
        let items: Vec<Value> = (0..512).map(|n| Value::Number(n as f64)).collect();
        let pipeline = Pipeline::new(StreamConfig {
            block_items: 128,
            ..Default::default()
        })
        .map(times_ten())
        .map(times_ten());
        let out = pipeline.run(items).unwrap();
        assert_eq!(out[3], Value::Number(300.0));
        assert!(
            metrics::PAR_COLUMNAR_CHUNKS.get() >= before + 8,
            "two batchable stages over four columnar blocks"
        );
    }

    #[test]
    fn filter_keeps_sequence_dense_and_order_stable() {
        // Keep even numbers only; ordered emitter must preserve input
        // order even though half of some blocks disappears.
        let keep_even = Arc::new(Ring::reporter_with_params(
            vec!["x".into()],
            eq(modulo(var("x"), num(2.0)), num(0.0)),
        ));
        let items: Vec<Value> = (0..300).map(|n| Value::Number(n as f64)).collect();
        let pipeline = Pipeline::new(StreamConfig {
            block_items: 32,
            stage_workers: 2,
            ..Default::default()
        })
        .filter(keep_even);
        let out = pipeline.run(items).unwrap();
        let expected: Vec<Value> = (0..300)
            .filter(|n| n % 2 == 0)
            .map(|n| Value::Number(n as f64))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn flat_map_splices_list_results() {
        // x → [x, x] doubles the stream.
        let duplicate = Arc::new(Ring::reporter_with_params(
            vec!["x".into()],
            make_list(vec![var("x"), var("x")]),
        ));
        let items: Vec<Value> = (0..50).map(|n| Value::Number(n as f64)).collect();
        let pipeline = Pipeline::new(StreamConfig {
            block_items: 16,
            ..Default::default()
        })
        .flat_map(duplicate);
        let out = pipeline.run(items).unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], Value::Number(0.0));
        assert_eq!(out[1], Value::Number(0.0));
        assert_eq!(out[2], Value::Number(1.0));
    }

    #[test]
    fn windowed_word_count_matches_per_window_batch() {
        let words = ["the", "fox", "dog", "the", "a", "the"];
        let items: Vec<Value> = (0..240).map(|i| words[i % words.len()].into()).collect();
        let window = 80;
        let pipeline = Pipeline::new(StreamConfig {
            block_items: 16,
            ..Default::default()
        })
        .map(word_count_mapper())
        .reduce_by_key(word_count_reducer(), window);
        let (streamed, stats) = pipeline.run_with_stats(items.clone()).unwrap();
        // The batch equivalent of each window, concatenated.
        let mut expected = Vec::new();
        for chunk in items.chunks(window) {
            expected.extend(
                crate::map_reduce(word_count_mapper(), word_count_reducer(), chunk.to_vec(), 4)
                    .unwrap(),
            );
        }
        assert_eq!(streamed, expected);
        assert_eq!(stats.windows, 3);
    }

    #[test]
    fn partial_tail_window_is_flushed() {
        let items: Vec<Value> = (0..10).map(|_| Value::text("w")).collect();
        let pipeline = Pipeline::new(StreamConfig {
            block_items: 4,
            ..Default::default()
        })
        .map(word_count_mapper())
        .reduce_by_key(word_count_reducer(), 100);
        let (out, stats) = pipeline.run_with_stats(items).unwrap();
        assert_eq!(stats.windows, 1, "tail flush closes the partial window");
        assert_eq!(out.len(), 1);
        let pair = out[0].as_list().unwrap();
        assert_eq!(pair.item(2).unwrap(), Value::Number(10.0));
    }

    #[test]
    fn empty_source_is_fine() {
        let pipeline = Pipeline::new(StreamConfig::default()).map(times_ten());
        let (out, stats) = pipeline.run_with_stats(Vec::new()).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.items_in, 0);
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn eval_errors_abort_the_stream() {
        // item 5 of a 1-element list → index error mid-stream.
        let bad = Arc::new(Ring::reporter(item(num(5.0), empty_slot())));
        let items: Vec<Value> = (0..100).map(|_| Value::list(vec![1.into()])).collect();
        let pipeline = Pipeline::new(StreamConfig {
            block_items: 8,
            ..Default::default()
        })
        .map(bad);
        assert!(pipeline.run(items).is_err(), "EvalError must surface");
    }

    #[test]
    fn nested_run_degrades_to_sequential() {
        // From a pool worker thread, the stream must not try to park
        // the worker on channel recv — it degrades to the in-order
        // sequential pass instead.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        global_pool()
            .execute(move || {
                let inner: Vec<Value> = (0..100).map(|n| Value::Number(n as f64)).collect();
                let pipeline = Pipeline::new(StreamConfig::default()).map(times_ten());
                let _ = done_tx.send(pipeline.run_with_stats(inner).unwrap());
            })
            .unwrap();
        let (values, stats) = done_rx.recv().unwrap();
        assert_eq!(values.len(), 100);
        assert!(stats.sequential, "nested run must take the sequential path");
    }

    #[test]
    fn unordered_emitter_delivers_same_multiset() {
        let items: Vec<Value> = (0..400).map(|n| Value::Number(n as f64)).collect();
        let pipeline = Pipeline::new(StreamConfig {
            block_items: 32,
            stage_workers: 4,
            emitter: Emitter::Unordered,
            ..Default::default()
        })
        .map(times_ten());
        let mut out = pipeline.run(items).unwrap();
        let mut expected: Vec<Value> = (0..400).map(|n| Value::Number(n as f64 * 10.0)).collect();
        out.sort_by(|a, b| a.to_number().partial_cmp(&b.to_number()).unwrap());
        expected.sort_by(|a, b| a.to_number().partial_cmp(&b.to_number()).unwrap());
        assert_eq!(out, expected);
    }

    #[test]
    fn queue_depths_stay_within_capacity() {
        let items: Vec<Value> = (0..2000).map(|n| Value::Number(n as f64)).collect();
        let config = StreamConfig {
            block_items: 16,
            capacity: 3,
            ..Default::default()
        };
        let pipeline = Pipeline::new(config).map(times_ten());
        let (_, stats) = pipeline.run_with_stats(items).unwrap();
        assert!(!stats.peak_queue_depths.is_empty());
        for &peak in &stats.peak_queue_depths {
            assert!(
                peak <= stats.queue_capacity,
                "peak {peak} exceeded capacity {}",
                stats.queue_capacity
            );
        }
    }
}
