//! Inter-node parallelism — a simulated cluster executing `parallelMap`.
//!
//! §6.3 closes with "we also wish to extend Snap! to extract even more
//! intra-node parallelism as well as support inter-node parallelism."
//! We have one machine, so the inter-node half is the documented
//! substitution: results are computed for real (every item goes through
//! the same compiled ring as the worker pool), while *time* is modeled
//! with an explicit cost accounting — per-item compute cost, per-item
//! network transfer, and per-node startup — so node-count scaling and
//! its crossovers are measurable deterministically on any host.
//!
//! The model is the classic master/worker offload with a serialized
//! master link (the Amdahl term that makes network-bound work saturate):
//!
//! ```text
//! t_net     = 2·net·total_items                  (scatter + gather, serial at the master)
//! t(node)   = startup + ceil(items(node)/cores)·compute
//! makespan  = t_net + max over nodes t(node)
//! speedup   = makespan(1 node) / makespan
//! ```

use std::sync::Arc;

use snap_ast::{EvalError, PureFn, Ring, Value};

/// Cost model of the simulated cluster, in abstract cost units
/// (think microseconds).
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores per node (intra-node parallelism).
    pub cores_per_node: usize,
    /// Compute cost of one item on one core.
    pub compute_cost: u64,
    /// Network cost of moving one item to or from a node.
    pub net_cost_per_item: u64,
    /// Fixed cost of involving a node at all (process launch, connect).
    pub startup_cost: u64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 4,
            cores_per_node: 4,
            compute_cost: 100,
            net_cost_per_item: 5,
            startup_cost: 1_000,
        }
    }
}

/// The outcome of a simulated distributed map.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The (real) results, in input order.
    pub results: Vec<Value>,
    /// Modeled completion time: master-link transfer plus the slowest
    /// node's compute.
    pub makespan: u64,
    /// Modeled serialized transfer time at the master.
    pub master_net_time: u64,
    /// Modeled per-node busy time (startup + compute waves).
    pub per_node_time: Vec<u64>,
    /// Items assigned per node.
    pub per_node_items: Vec<usize>,
}

impl DistributedOutcome {
    /// Modeled speedup over running everything on a single node of the
    /// same spec.
    pub fn speedup_vs_single_node(&self, spec: &ClusterSpec, total_items: usize) -> f64 {
        let single = master_net_time(spec, total_items) + node_time(spec, total_items);
        if self.makespan == 0 {
            return 1.0;
        }
        single as f64 / self.makespan as f64
    }
}

/// Modeled serialized transfer time at the master (scatter + gather).
pub fn master_net_time(spec: &ClusterSpec, total_items: usize) -> u64 {
    2 * spec.net_cost_per_item * total_items as u64
}

/// Modeled busy time of one node given its item share (startup plus
/// compute waves; transfers are accounted at the master).
pub fn node_time(spec: &ClusterSpec, items: usize) -> u64 {
    if items == 0 {
        return 0;
    }
    let cores = spec.cores_per_node.max(1) as u64;
    let waves = (items as u64).div_ceil(cores);
    spec.startup_cost + waves * spec.compute_cost
}

/// Run a ring over items on the simulated cluster: block-partition
/// across nodes, evaluate for real, account modeled time.
pub fn distributed_map(
    ring: Arc<Ring>,
    items: Vec<Value>,
    spec: &ClusterSpec,
) -> Result<DistributedOutcome, EvalError> {
    snap_trace::well_known::DISTRIBUTED_MAPS.incr();
    snap_trace::well_known::DISTRIBUTED_ITEMS.add(items.len() as u64);
    let _span = snap_trace::span!("distributed_map", "items" => items.len());
    let f = PureFn::compile(ring)?;
    let nodes = spec.nodes.max(1);
    let total = items.len();
    let chunk = total.div_ceil(nodes).max(1);

    let mut results = Vec::with_capacity(total);
    let mut per_node_time = Vec::with_capacity(nodes);
    let mut per_node_items = Vec::with_capacity(nodes);
    for node in 0..nodes {
        let start = node * chunk;
        let end = ((node + 1) * chunk).min(total);
        let share = end.saturating_sub(start);
        per_node_items.push(share);
        per_node_time.push(if share > 0 { node_time(spec, share) } else { 0 });
        for item in &items[start.min(total)..end] {
            // Network transfer = structured clone, like the worker pool.
            results.push(f.call1(item.deep_copy())?.deep_copy());
        }
    }
    let master_net_time = master_net_time(spec, total);
    let makespan = if total == 0 {
        0
    } else {
        master_net_time + per_node_time.iter().copied().max().unwrap_or(0)
    };
    Ok(DistributedOutcome {
        results,
        makespan,
        master_net_time,
        per_node_time,
        per_node_items,
    })
}

/// Sweep node counts and return `(nodes, makespan, speedup)` rows — the
/// series a strong-scaling plot shows.
pub fn strong_scaling_sweep(
    ring: Arc<Ring>,
    items: Vec<Value>,
    base: &ClusterSpec,
    node_counts: &[usize],
) -> Result<Vec<(usize, u64, f64)>, EvalError> {
    let total = items.len();
    let mut rows = Vec::with_capacity(node_counts.len());
    for &nodes in node_counts {
        let spec = ClusterSpec { nodes, ..*base };
        let outcome = distributed_map(ring.clone(), items.clone(), &spec)?;
        let speedup = outcome.speedup_vs_single_node(&spec, total);
        rows.push((nodes, outcome.makespan, speedup));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;

    fn times_ten() -> Arc<Ring> {
        Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
    }

    #[test]
    fn results_are_real_and_ordered() {
        let items: Vec<Value> = (1..=10).map(|n| Value::Number(n as f64)).collect();
        let outcome = distributed_map(times_ten(), items, &ClusterSpec::default()).unwrap();
        let expected: Vec<Value> = (1..=10).map(|n| Value::Number(n as f64 * 10.0)).collect();
        assert_eq!(outcome.results, expected);
    }

    #[test]
    fn more_nodes_reduce_makespan_for_compute_heavy_work() {
        let spec = |nodes| ClusterSpec {
            nodes,
            compute_cost: 1_000,
            net_cost_per_item: 1,
            startup_cost: 10,
            cores_per_node: 1,
        };
        let items: Vec<Value> = (0..64).map(|n| Value::Number(n as f64)).collect();
        let one = distributed_map(times_ten(), items.clone(), &spec(1)).unwrap();
        let four = distributed_map(times_ten(), items.clone(), &spec(4)).unwrap();
        let sixteen = distributed_map(times_ten(), items, &spec(16)).unwrap();
        assert!(four.makespan < one.makespan);
        assert!(sixteen.makespan < four.makespan);
        // Near-ideal: 64 items / 16 nodes = 4 waves of compute.
        let speedup = sixteen.speedup_vs_single_node(&spec(16), 64);
        assert!(speedup > 10.0, "got {speedup}");
    }

    #[test]
    fn network_bound_work_stops_scaling() {
        // When moving an item costs more than computing it, extra nodes
        // barely help (scatter/gather dominates each node's share) —
        // the crossover the cost model must expose.
        let spec = |nodes| ClusterSpec {
            nodes,
            compute_cost: 1,
            net_cost_per_item: 500,
            startup_cost: 50_000,
            cores_per_node: 4,
        };
        let items: Vec<Value> = (0..64).map(|n| Value::Number(n as f64)).collect();
        let rows = strong_scaling_sweep(times_ten(), items, &spec(1), &[1, 2, 4, 8, 16]).unwrap();
        let speedup_at_16 = rows.last().unwrap().2;
        assert!(
            speedup_at_16 < 4.0,
            "network-bound work must not scale ideally: {speedup_at_16}"
        );
    }

    #[test]
    fn startup_cost_makes_small_jobs_prefer_fewer_nodes() {
        let spec = ClusterSpec {
            nodes: 1,
            compute_cost: 10,
            net_cost_per_item: 1,
            startup_cost: 100_000,
            cores_per_node: 1,
        };
        let items: Vec<Value> = (0..8).map(|n| Value::Number(n as f64)).collect();
        let rows = strong_scaling_sweep(times_ten(), items, &spec, &[1, 8]).unwrap();
        let (_, t1, _) = rows[0];
        let (_, t8, speedup8) = rows[1];
        // 8 nodes pay 8 startups (in parallel) and save almost no
        // compute: the makespan barely moves and the speedup is ~1×.
        assert!(t8 > t1 * 99 / 100, "t8 {t8} vs t1 {t1}");
        assert!(speedup8 < 1.01, "startup-bound speedup was {speedup8}");
    }

    #[test]
    fn per_node_accounting_sums_to_all_items() {
        let items: Vec<Value> = (0..37).map(|n| Value::Number(n as f64)).collect();
        let outcome = distributed_map(
            times_ten(),
            items,
            &ClusterSpec {
                nodes: 5,
                ..ClusterSpec::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.per_node_items.iter().sum::<usize>(), 37);
        assert_eq!(outcome.per_node_time.len(), 5);
        assert_eq!(
            outcome.makespan,
            outcome.master_net_time + *outcome.per_node_time.iter().max().unwrap()
        );
    }

    #[test]
    fn empty_input_is_free() {
        let outcome = distributed_map(times_ten(), Vec::new(), &ClusterSpec::default()).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.makespan, 0);
    }

    #[test]
    fn intra_node_cores_shorten_waves() {
        let base = ClusterSpec {
            nodes: 1,
            compute_cost: 100,
            net_cost_per_item: 0,
            startup_cost: 0,
            cores_per_node: 1,
        };
        assert_eq!(node_time(&base, 8), 800);
        let quad = ClusterSpec {
            cores_per_node: 4,
            ..base
        };
        assert_eq!(node_time(&quad, 8), 200);
    }
}
