//! Inter-node parallelism — a simulated cluster executing `parallelMap`.
//!
//! §6.3 closes with "we also wish to extend Snap! to extract even more
//! intra-node parallelism as well as support inter-node parallelism."
//! We have one machine, so the inter-node half is the documented
//! substitution: results are computed for real (every item goes through
//! the same compiled ring as the worker pool), while *time* is modeled
//! with an explicit cost accounting — per-item compute cost, per-item
//! network transfer, and per-node startup — so node-count scaling and
//! its crossovers are measurable deterministically on any host.
//!
//! The model is the classic master/worker offload with a serialized
//! master link (the Amdahl term that makes network-bound work saturate):
//!
//! ```text
//! t_net     = 2·net·total_items                  (scatter + gather, serial at the master)
//! t(node)   = startup + ceil(items(node)/cores)·compute
//! makespan  = t_net + max over nodes t(node)
//! speedup   = makespan(1 node) / makespan
//! ```

use std::sync::Arc;

use snap_ast::{EvalError, PureFn, Ring, Value};
use snap_workers::FaultInjector;

/// Cost model of the simulated cluster, in abstract cost units
/// (think microseconds).
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores per node (intra-node parallelism).
    pub cores_per_node: usize,
    /// Compute cost of one item on one core.
    pub compute_cost: u64,
    /// Network cost of moving one item to or from a node.
    pub net_cost_per_item: u64,
    /// Fixed cost of involving a node at all (process launch, connect).
    pub startup_cost: u64,
    /// Probability a node fails outright during the map. Its items are
    /// reassigned round-robin to the survivors and re-transferred.
    pub node_failure_p: f64,
    /// Probability a surviving node straggles (runs slow).
    pub straggler_p: f64,
    /// Slowdown multiplier applied to a straggling node's compute.
    pub straggler_factor: f64,
    /// Seed for the deterministic failure/straggler draws — the same
    /// seed always fails the same nodes.
    pub fault_seed: u64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            nodes: 4,
            cores_per_node: 4,
            compute_cost: 100,
            net_cost_per_item: 5,
            startup_cost: 1_000,
            node_failure_p: 0.0,
            straggler_p: 0.0,
            straggler_factor: 4.0,
            fault_seed: 0x5eed,
        }
    }
}

/// The outcome of a simulated distributed map.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The (real) results, in input order.
    pub results: Vec<Value>,
    /// Modeled completion time: master-link transfer plus the slowest
    /// node's compute.
    pub makespan: u64,
    /// Modeled serialized transfer time at the master.
    pub master_net_time: u64,
    /// Modeled per-node busy time (startup + compute waves; 0 for a
    /// failed node — its paid startup is accounted at the master).
    pub per_node_time: Vec<u64>,
    /// Items assigned per node after reassignment (0 for failed nodes).
    pub per_node_items: Vec<usize>,
    /// Nodes that failed their startup draw this run.
    pub failed_nodes: usize,
    /// Items re-sent to a survivor after their node failed.
    pub reassigned_items: usize,
    /// Straggling nodes that got a speculative backup execution.
    pub speculative_runs: usize,
    /// `true` when every node failed and the master ran the whole map
    /// itself (the last rung of the degradation ladder).
    pub degraded: bool,
}

impl DistributedOutcome {
    /// Modeled speedup over running everything on a single node of the
    /// same spec.
    pub fn speedup_vs_single_node(&self, spec: &ClusterSpec, total_items: usize) -> f64 {
        let single = master_net_time(spec, total_items) + node_time(spec, total_items);
        if self.makespan == 0 {
            return 1.0;
        }
        single as f64 / self.makespan as f64
    }
}

/// Modeled serialized transfer time at the master (scatter + gather).
pub fn master_net_time(spec: &ClusterSpec, total_items: usize) -> u64 {
    2 * spec.net_cost_per_item * total_items as u64
}

/// Modeled busy time of one node given its item share (startup plus
/// compute waves; transfers are accounted at the master).
pub fn node_time(spec: &ClusterSpec, items: usize) -> u64 {
    if items == 0 {
        return 0;
    }
    let cores = spec.cores_per_node.max(1) as u64;
    let waves = (items as u64).div_ceil(cores);
    spec.startup_cost + waves * spec.compute_cost
}

/// Run a ring over items on the simulated cluster: block-partition
/// across nodes, evaluate for real, account modeled time.
///
/// Faults are part of the model: each node draws (deterministically
/// under `spec.fault_seed`) whether it fails outright — its items are
/// reassigned round-robin to the survivors, paying their transfer again
/// at the master — and each survivor draws whether it straggles, in
/// which case a speculative backup execution caps its effective time at
/// `healthy time + startup` (the backup starts once the straggler is
/// noticed). When *every* node fails, the run degrades: the master
/// computes the whole map itself on one core, with no network cost.
/// Results are always computed for real, in input order, whatever the
/// modeled cluster does.
pub fn distributed_map(
    ring: Arc<Ring>,
    items: Vec<Value>,
    spec: &ClusterSpec,
) -> Result<DistributedOutcome, EvalError> {
    snap_trace::well_known::DISTRIBUTED_MAPS.incr();
    snap_trace::well_known::DISTRIBUTED_ITEMS.add(items.len() as u64);
    let _span = snap_trace::span!("distributed_map", "items" => items.len());
    let f = PureFn::compile(ring)?;
    let nodes = spec.nodes.max(1);
    let total = items.len();
    let chunk = total.div_ceil(nodes).max(1);

    // Results first, in input order — the simulation only models time,
    // never which answers come back.
    let mut results = Vec::with_capacity(total);
    for item in &items {
        // Network transfer = structured clone, like the worker pool.
        results.push(f.call1(item.deep_copy())?.deep_copy());
    }

    // Failure draws, deterministic per seed. The injector's pure
    // (seed, key, attempt) hash is exactly the coin we need.
    let failure_draw = FaultInjector::new(spec.fault_seed).panic_probability(spec.node_failure_p);
    let straggler_draw = FaultInjector::new(spec.fault_seed).panic_probability(spec.straggler_p);
    let failed: Vec<bool> = (0..nodes)
        .map(|n| failure_draw.should_panic(n as u64, 0))
        .collect();
    let failed_nodes = failed.iter().filter(|&&f| f).count();

    let mut per_node_items: Vec<usize> = (0..nodes)
        .map(|node| {
            let start = (node * chunk).min(total);
            let end = ((node + 1) * chunk).min(total);
            end - start
        })
        .collect();

    if failed_nodes == nodes && total > 0 {
        // Full-cluster failure: the master runs the map itself on one
        // core. No scatter/gather — the data never left.
        snap_trace::well_known::DIST_NODE_FAILURES.add(failed_nodes as u64);
        snap_trace::well_known::DIST_DEGRADED_RUNS.incr();
        snap_trace::note(
            "distributed.degraded",
            format!("all {nodes} node(s) failed; master ran {total} item(s) locally"),
        );
        let makespan = nodes as u64 * spec.startup_cost + total as u64 * spec.compute_cost;
        return Ok(DistributedOutcome {
            results,
            makespan,
            master_net_time: 0,
            per_node_time: vec![0; nodes],
            per_node_items: vec![0; nodes],
            failed_nodes,
            reassigned_items: 0,
            speculative_runs: 0,
            degraded: true,
        });
    }

    // Reassign failed nodes' items round-robin across the survivors.
    let mut reassigned_items = 0usize;
    if failed_nodes > 0 && total > 0 {
        snap_trace::well_known::DIST_NODE_FAILURES.add(failed_nodes as u64);
        let survivors: Vec<usize> = (0..nodes).filter(|&n| !failed[n]).collect();
        let mut turn = 0usize;
        for node in 0..nodes {
            if failed[node] {
                let share = std::mem::take(&mut per_node_items[node]);
                reassigned_items += share;
                for _ in 0..share {
                    per_node_items[survivors[turn % survivors.len()]] += 1;
                    turn += 1;
                }
            }
        }
        snap_trace::well_known::DIST_ITEMS_REASSIGNED.add(reassigned_items as u64);
        snap_trace::note(
            "distributed.reassigned",
            format!("{failed_nodes} node(s) failed; {reassigned_items} item(s) reassigned"),
        );
    }

    // Per-node busy time: failed nodes contribute nothing (their wasted
    // startup is charged to the master link below); stragglers run
    // `straggler_factor` slow but a speculative backup caps the damage
    // at healthy-time + one extra startup.
    let mut speculative_runs = 0usize;
    let per_node_time: Vec<u64> = (0..nodes)
        .map(|node| {
            let share = per_node_items[node];
            if failed[node] || share == 0 {
                return 0;
            }
            let healthy = node_time(spec, share);
            if straggler_draw.should_panic(node as u64, 1) {
                let compute = healthy - spec.startup_cost;
                let straggled =
                    spec.startup_cost + (compute as f64 * spec.straggler_factor.max(1.0)) as u64;
                let speculative = healthy + spec.startup_cost;
                if speculative < straggled {
                    speculative_runs += 1;
                    snap_trace::well_known::DIST_SPECULATIVE_RUNS.incr();
                    return speculative;
                }
                return straggled;
            }
            healthy
        })
        .collect();

    // Master link: every item crosses twice, reassigned items a second
    // time (their first transfer was wasted on the failed node), and
    // each failed node's startup was still paid before the failure was
    // detected.
    let master_net_time = master_net_time(spec, total)
        + 2 * spec.net_cost_per_item * reassigned_items as u64
        + failed_nodes as u64 * spec.startup_cost;
    let makespan = if total == 0 {
        0
    } else {
        master_net_time + per_node_time.iter().copied().max().unwrap_or(0)
    };
    Ok(DistributedOutcome {
        results,
        makespan,
        master_net_time,
        per_node_time,
        per_node_items,
        failed_nodes,
        reassigned_items,
        speculative_runs,
        degraded: false,
    })
}

/// Sweep node counts and return `(nodes, makespan, speedup)` rows — the
/// series a strong-scaling plot shows.
pub fn strong_scaling_sweep(
    ring: Arc<Ring>,
    items: Vec<Value>,
    base: &ClusterSpec,
    node_counts: &[usize],
) -> Result<Vec<(usize, u64, f64)>, EvalError> {
    let total = items.len();
    let mut rows = Vec::with_capacity(node_counts.len());
    for &nodes in node_counts {
        let spec = ClusterSpec { nodes, ..*base };
        let outcome = distributed_map(ring.clone(), items.clone(), &spec)?;
        let speedup = outcome.speedup_vs_single_node(&spec, total);
        rows.push((nodes, outcome.makespan, speedup));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_ast::builder::*;

    fn times_ten() -> Arc<Ring> {
        Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
    }

    #[test]
    fn results_are_real_and_ordered() {
        let items: Vec<Value> = (1..=10).map(|n| Value::Number(n as f64)).collect();
        let outcome = distributed_map(times_ten(), items, &ClusterSpec::default()).unwrap();
        let expected: Vec<Value> = (1..=10).map(|n| Value::Number(n as f64 * 10.0)).collect();
        assert_eq!(outcome.results, expected);
    }

    #[test]
    fn more_nodes_reduce_makespan_for_compute_heavy_work() {
        let spec = |nodes| ClusterSpec {
            nodes,
            compute_cost: 1_000,
            net_cost_per_item: 1,
            startup_cost: 10,
            cores_per_node: 1,
            ..ClusterSpec::default()
        };
        let items: Vec<Value> = (0..64).map(|n| Value::Number(n as f64)).collect();
        let one = distributed_map(times_ten(), items.clone(), &spec(1)).unwrap();
        let four = distributed_map(times_ten(), items.clone(), &spec(4)).unwrap();
        let sixteen = distributed_map(times_ten(), items, &spec(16)).unwrap();
        assert!(four.makespan < one.makespan);
        assert!(sixteen.makespan < four.makespan);
        // Near-ideal: 64 items / 16 nodes = 4 waves of compute.
        let speedup = sixteen.speedup_vs_single_node(&spec(16), 64);
        assert!(speedup > 10.0, "got {speedup}");
    }

    #[test]
    fn network_bound_work_stops_scaling() {
        // When moving an item costs more than computing it, extra nodes
        // barely help (scatter/gather dominates each node's share) —
        // the crossover the cost model must expose.
        let spec = |nodes| ClusterSpec {
            nodes,
            compute_cost: 1,
            net_cost_per_item: 500,
            startup_cost: 50_000,
            cores_per_node: 4,
            ..ClusterSpec::default()
        };
        let items: Vec<Value> = (0..64).map(|n| Value::Number(n as f64)).collect();
        let rows = strong_scaling_sweep(times_ten(), items, &spec(1), &[1, 2, 4, 8, 16]).unwrap();
        let speedup_at_16 = rows.last().unwrap().2;
        assert!(
            speedup_at_16 < 4.0,
            "network-bound work must not scale ideally: {speedup_at_16}"
        );
    }

    #[test]
    fn startup_cost_makes_small_jobs_prefer_fewer_nodes() {
        let spec = ClusterSpec {
            nodes: 1,
            compute_cost: 10,
            net_cost_per_item: 1,
            startup_cost: 100_000,
            cores_per_node: 1,
            ..ClusterSpec::default()
        };
        let items: Vec<Value> = (0..8).map(|n| Value::Number(n as f64)).collect();
        let rows = strong_scaling_sweep(times_ten(), items, &spec, &[1, 8]).unwrap();
        let (_, t1, _) = rows[0];
        let (_, t8, speedup8) = rows[1];
        // 8 nodes pay 8 startups (in parallel) and save almost no
        // compute: the makespan barely moves and the speedup is ~1×.
        assert!(t8 > t1 * 99 / 100, "t8 {t8} vs t1 {t1}");
        assert!(speedup8 < 1.01, "startup-bound speedup was {speedup8}");
    }

    #[test]
    fn per_node_accounting_sums_to_all_items() {
        let items: Vec<Value> = (0..37).map(|n| Value::Number(n as f64)).collect();
        let outcome = distributed_map(
            times_ten(),
            items,
            &ClusterSpec {
                nodes: 5,
                ..ClusterSpec::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.per_node_items.iter().sum::<usize>(), 37);
        assert_eq!(outcome.per_node_time.len(), 5);
        assert_eq!(
            outcome.makespan,
            outcome.master_net_time + *outcome.per_node_time.iter().max().unwrap()
        );
    }

    #[test]
    fn empty_input_is_free() {
        let outcome = distributed_map(times_ten(), Vec::new(), &ClusterSpec::default()).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.makespan, 0);
    }

    #[test]
    fn node_failures_reassign_items_and_keep_results_exact() {
        let spec = ClusterSpec {
            nodes: 8,
            node_failure_p: 0.4,
            fault_seed: 12345,
            ..ClusterSpec::default()
        };
        let items: Vec<Value> = (1..=64).map(|n| Value::Number(n as f64)).collect();
        let outcome = distributed_map(times_ten(), items, &spec).unwrap();
        // With p=0.4 over 8 nodes under this seed, some but not all fail.
        assert!(outcome.failed_nodes > 0, "seed must fail at least one node");
        assert!(outcome.failed_nodes < 8, "seed must leave survivors");
        assert!(outcome.reassigned_items > 0);
        // Every item still computed, in order, despite the failures.
        let expected: Vec<Value> = (1..=64).map(|n| Value::Number(n as f64 * 10.0)).collect();
        assert_eq!(outcome.results, expected);
        // Failed nodes hold no items; survivors hold them all.
        assert_eq!(outcome.per_node_items.iter().sum::<usize>(), 64);
        assert!(!outcome.degraded);
    }

    #[test]
    fn failures_are_deterministic_per_seed() {
        let spec = ClusterSpec {
            nodes: 8,
            node_failure_p: 0.4,
            fault_seed: 777,
            ..ClusterSpec::default()
        };
        let items: Vec<Value> = (0..16).map(|n| Value::Number(n as f64)).collect();
        let a = distributed_map(times_ten(), items.clone(), &spec).unwrap();
        let b = distributed_map(times_ten(), items, &spec).unwrap();
        assert_eq!(a.failed_nodes, b.failed_nodes);
        assert_eq!(a.per_node_items, b.per_node_items);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn full_cluster_failure_degrades_to_the_master() {
        let spec = ClusterSpec {
            nodes: 4,
            node_failure_p: 1.0,
            ..ClusterSpec::default()
        };
        let items: Vec<Value> = (1..=10).map(|n| Value::Number(n as f64)).collect();
        let outcome = distributed_map(times_ten(), items, &spec).unwrap();
        assert!(outcome.degraded);
        assert_eq!(outcome.failed_nodes, 4);
        let expected: Vec<Value> = (1..=10).map(|n| Value::Number(n as f64 * 10.0)).collect();
        assert_eq!(outcome.results, expected, "degraded run still answers");
        // Master pays every wasted startup plus one core's compute.
        assert_eq!(
            outcome.makespan,
            4 * spec.startup_cost + 10 * spec.compute_cost
        );
    }

    #[test]
    fn failures_make_the_run_slower_than_a_clean_one() {
        let clean = ClusterSpec {
            nodes: 8,
            cores_per_node: 1,
            ..ClusterSpec::default()
        };
        let faulty = ClusterSpec {
            node_failure_p: 0.4,
            fault_seed: 12345,
            ..clean
        };
        let items: Vec<Value> = (0..64).map(|n| Value::Number(n as f64)).collect();
        let healthy = distributed_map(times_ten(), items.clone(), &clean).unwrap();
        let recovered = distributed_map(times_ten(), items, &faulty).unwrap();
        assert!(
            recovered.makespan > healthy.makespan,
            "retries must cost time: {} vs {}",
            recovered.makespan,
            healthy.makespan
        );
    }

    #[test]
    fn speculative_backup_caps_straggler_damage() {
        // One node, always straggling, with a big slowdown: the
        // speculative copy (healthy time + one startup) must win.
        let spec = ClusterSpec {
            nodes: 1,
            cores_per_node: 1,
            compute_cost: 1_000,
            startup_cost: 100,
            net_cost_per_item: 0,
            straggler_p: 1.0,
            straggler_factor: 10.0,
            ..ClusterSpec::default()
        };
        let items: Vec<Value> = (0..16).map(|n| Value::Number(n as f64)).collect();
        let outcome = distributed_map(times_ten(), items, &spec).unwrap();
        assert_eq!(outcome.speculative_runs, 1);
        let healthy = node_time(&spec, 16);
        assert_eq!(
            outcome.per_node_time[0],
            healthy + spec.startup_cost,
            "speculation caps the straggler at healthy + startup"
        );
    }

    #[test]
    fn intra_node_cores_shorten_waves() {
        let base = ClusterSpec {
            nodes: 1,
            compute_cost: 100,
            net_cost_per_item: 0,
            startup_cost: 0,
            cores_per_node: 1,
            ..ClusterSpec::default()
        };
        assert_eq!(node_time(&base, 8), 800);
        let quad = ClusterSpec {
            cores_per_node: 4,
            ..base
        };
        assert_eq!(node_time(&quad, 8), 200);
    }
}
