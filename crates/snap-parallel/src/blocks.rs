//! The parallel blocks, as plain functions.
//!
//! These are the semantics of the paper's three new blocks, exposed for
//! embedding code and the benchmark harness. Scripts running inside the
//! VM reach the same implementations through [`crate::WorkerBackend`].

use std::sync::Arc;

use snap_ast::{EvalError, Ring, Value};
use snap_workers::{ring_map, ring_map_pairs, ring_reduce_groups, RingMapOptions};

use crate::shuffle::shuffle;

/// `parallelMap <ring> over <list>` (paper §3.2): apply the ring to every
/// item on `workers` true parallel workers; results in input order.
pub fn parallel_map(
    ring: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
) -> Result<Vec<Value>, EvalError> {
    let _span = snap_trace::span!("parallel_map", "items" => items.len());
    ring_map(
        ring,
        items,
        RingMapOptions {
            workers,
            ..Default::default()
        },
    )
}

/// `mapReduce <mapper> <reducer> over <list>` (paper §3.4): parallel map
/// phase producing `[key, value]` pairs, sort-by-key shuffle, then a
/// parallel reduce phase — one reducer call per key, receiving that key's
/// value list. Returns `[key, reduced]` pairs in key order.
pub fn map_reduce(
    mapper: Arc<Ring>,
    reducer: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
) -> Result<Vec<Value>, EvalError> {
    let _span = snap_trace::span!("map_reduce", "items" => items.len());
    let options = RingMapOptions {
        workers,
        ..Default::default()
    };
    let pairs = ring_map_pairs(mapper, items, options)?;
    let groups = shuffle(pairs);
    ring_reduce_groups(reducer, groups, options)
}

/// `parallelForEach` over plain Rust data: run `f` once per item with
/// true parallelism. The in-VM block spawns sprite clones instead (see
/// `snap-vm`); this is the embedding-API equivalent.
pub fn parallel_for_each<T: Send + Sync>(
    items: Vec<T>,
    workers: usize,
    f: impl Fn(&T) + Send + Sync,
) {
    snap_workers::Parallel::new(items)
        .with_max_workers(workers)
        .for_each(f);
}

#[cfg(test)]
mod tests {
    use super::{map_reduce as run_map_reduce, parallel_for_each, parallel_map};
    use super::{Arc, Ring, Value};
    use snap_ast::builder::*;

    #[test]
    fn parallel_map_times_ten() {
        let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
        let out = parallel_map(ring, vec![3.into(), 7.into(), 8.into()], 4).unwrap();
        assert_eq!(out, vec![30.into(), 70.into(), 80.into()]);
    }

    #[test]
    fn map_reduce_word_count_matches_paper_fig12() {
        // Figure 11/12: word count over a sentence; output is the sorted
        // unique words with their counts.
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ));
        let words: Vec<Value> = "the quick brown fox jumps over the lazy dog the end"
            .split(' ')
            .map(Value::from)
            .collect();
        let out = run_map_reduce(mapper, reducer, words, 4).unwrap();
        let rendered: Vec<String> = out.iter().map(Value::to_display_string).collect();
        assert_eq!(
            rendered,
            vec![
                "[brown, 1]",
                "[dog, 1]",
                "[end, 1]",
                "[fox, 1]",
                "[jumps, 1]",
                "[lazy, 1]",
                "[over, 1]",
                "[quick, 1]",
                "[the, 3]",
            ]
        );
    }

    #[test]
    fn map_reduce_climate_average_matches_paper_fig13() {
        // Figure 13: mapper converts °F to °C, reducer averages. A single
        // shared key averages the whole dataset.
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["t".into()],
            make_list(vec![
                text("avg"),
                div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
            ]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            div(
                combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                length_of(var("vals")),
            ),
        ));
        // 32 °F → 0 °C, 212 °F → 100 °C: average 50 °C.
        let out = run_map_reduce(mapper, reducer, vec![32.into(), 212.into()], 4).unwrap();
        assert_eq!(out.len(), 1);
        let pair = out[0].as_list().unwrap();
        assert_eq!(pair.item(1).unwrap(), Value::text("avg"));
        assert!((pair.item(2).unwrap().to_number() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn identity_map_function_passes_through() {
        // §3.4: "the map or reduce functions can express the identity
        // function which passes its input argument through unchanged" —
        // here an identity-shaped mapper emits [item, item].
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["x".into()],
            make_list(vec![var("x"), var("x")]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            item(num(1.0), var("vals")),
        ));
        let out = run_map_reduce(mapper, reducer, vec![2.into(), 1.into()], 2).unwrap();
        assert_eq!(
            out,
            vec![
                Value::list(vec![1.into(), 1.into()]),
                Value::list(vec![2.into(), 2.into()]),
            ]
        );
    }

    #[test]
    fn parallel_for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        parallel_for_each((0..50).collect::<Vec<i32>>(), 4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let ring = Arc::new(Ring::reporter(pow(empty_slot(), num(2.0))));
        let items: Vec<Value> = (1..=100).map(|n| Value::Number(n as f64)).collect();
        let expected = parallel_map(ring.clone(), items.clone(), 1).unwrap();
        for workers in [2, 3, 4, 8, 16] {
            assert_eq!(
                parallel_map(ring.clone(), items.clone(), workers).unwrap(),
                expected,
                "worker count {workers} changed the result"
            );
        }
    }
}
