//! The parallel blocks, as plain functions.
//!
//! These are the semantics of the paper's three new blocks, exposed for
//! embedding code and the benchmark harness. Scripts running inside the
//! VM reach the same implementations through [`crate::WorkerBackend`].
//!
//! The blocks are the last rung of the fault-degradation ladder: when
//! the pooled execution layer gives up (retry budget exhausted), a block
//! never surfaces a panic — it re-runs the whole phase sequentially and
//! injector-free on the calling thread (counted under
//! `fault.degraded_runs`, recorded as a trace note). Deadline failures
//! are the exception: a deadline is a promise to the caller, so they
//! propagate as errors instead of being quietly absorbed by a slower
//! sequential pass.

use std::sync::Arc;

use snap_ast::pure::compile_cached;
use snap_ast::{EvalError, Ring, Value};
use snap_workers::{
    as_map_pair, ring_map_faulted, ring_map_pairs_faulted, ring_reduce_groups_faulted, ExecError,
    FaultPolicy, RingMapError, RingMapOptions,
};

use crate::shuffle::shuffle;

/// Record one block-level degradation to sequential execution.
fn record_degraded(block: &'static str, err: &ExecError) {
    snap_trace::well_known::FAULT_DEGRADED_RUNS.incr();
    snap_trace::note(
        "blocks.degraded",
        format!("{block} degraded to sequential: {err}"),
    );
}

/// Injector-free sequential map — the degraded path. Same structured
/// clone semantics as the pooled Copy isolation.
fn sequential_ring_map(ring: Arc<Ring>, items: &[Value]) -> Result<Vec<Value>, EvalError> {
    let f = compile_cached(&ring)?;
    items
        .iter()
        .map(|item| f.call1(item.deep_copy()).map(|v| v.deep_copy()))
        .collect()
}

/// Injector-free sequential reduce over shuffled groups — the degraded
/// path of the reduce phase.
fn sequential_reduce_groups(
    ring: Arc<Ring>,
    groups: Vec<(Value, Vec<Value>)>,
) -> Result<Vec<Value>, EvalError> {
    let f = compile_cached(&ring)?;
    groups
        .into_iter()
        .map(|(key, values)| {
            let arg = Value::list(values.iter().map(Value::deep_copy).collect());
            f.call1(arg)
                .map(|reduced| Value::list(vec![key, reduced.deep_copy()]))
        })
        .collect()
}

/// `parallelMap <ring> over <list>` (paper §3.2): apply the ring to every
/// item on `workers` true parallel workers; results in input order.
pub fn parallel_map(
    ring: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
) -> Result<Vec<Value>, EvalError> {
    parallel_map_with_options(
        ring,
        items,
        RingMapOptions {
            workers,
            ..Default::default()
        },
    )
}

/// [`parallel_map`] under an explicit [`FaultPolicy`].
pub fn parallel_map_with_policy(
    ring: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
    policy: FaultPolicy,
) -> Result<Vec<Value>, EvalError> {
    parallel_map_with_options(
        ring,
        items,
        RingMapOptions {
            workers,
            policy,
            ..Default::default()
        },
    )
}

/// [`parallel_map`] with full execution options, including the fault
/// policy. This is the fault-degradation rung: execution-layer failures
/// other than a missed deadline fall back to a sequential injector-free
/// map instead of surfacing.
pub fn parallel_map_with_options(
    ring: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
) -> Result<Vec<Value>, EvalError> {
    let _span = snap_trace::span!("parallel_map", "items" => items.len());
    // Values are cheap (shallow) to clone; keep a copy so the degraded
    // path can re-run the map after the pooled attempt consumed `items`.
    let fallback = items.clone();
    match ring_map_faulted(ring.clone(), items, options) {
        Ok(out) => Ok(out),
        Err(RingMapError::Eval(e)) => Err(e),
        Err(RingMapError::Exec(e @ ExecError::DeadlineExceeded { .. })) => {
            Err(EvalError::Other(e.to_string()))
        }
        Err(RingMapError::Exec(e)) => {
            record_degraded("parallel_map", &e);
            sequential_ring_map(ring, &fallback)
        }
    }
}

/// `mapReduce <mapper> <reducer> over <list>` (paper §3.4): parallel map
/// phase producing `[key, value]` pairs, sort-by-key shuffle, then a
/// parallel reduce phase — one reducer call per key, receiving that key's
/// value list. Returns `[key, reduced]` pairs in key order.
pub fn map_reduce(
    mapper: Arc<Ring>,
    reducer: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
) -> Result<Vec<Value>, EvalError> {
    map_reduce_with_options(
        mapper,
        reducer,
        items,
        RingMapOptions {
            workers,
            ..Default::default()
        },
    )
}

/// [`map_reduce`] under an explicit [`FaultPolicy`].
pub fn map_reduce_with_policy(
    mapper: Arc<Ring>,
    reducer: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
    policy: FaultPolicy,
) -> Result<Vec<Value>, EvalError> {
    map_reduce_with_options(
        mapper,
        reducer,
        items,
        RingMapOptions {
            workers,
            policy,
            ..Default::default()
        },
    )
}

/// [`map_reduce`] with full execution options. Each phase degrades to
/// its sequential path independently (a healthy reduce still runs
/// pooled even when the map phase had to degrade).
pub fn map_reduce_with_options(
    mapper: Arc<Ring>,
    reducer: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
) -> Result<Vec<Value>, EvalError> {
    let _span = snap_trace::span!("map_reduce", "items" => items.len());
    let fallback_items = items.clone();
    let pairs = match ring_map_pairs_faulted(mapper.clone(), items, options) {
        Ok(pairs) => pairs,
        Err(RingMapError::Eval(e)) => return Err(e),
        Err(RingMapError::Exec(e @ ExecError::DeadlineExceeded { .. })) => {
            return Err(EvalError::Other(e.to_string()))
        }
        Err(RingMapError::Exec(e)) => {
            record_degraded("map_reduce (map phase)", &e);
            sequential_ring_map(mapper, &fallback_items)?
                .into_iter()
                .map(as_map_pair)
                .collect::<Result<Vec<(Value, Value)>, EvalError>>()?
        }
    };
    let groups = shuffle(pairs);
    let fallback_groups = groups.clone();
    match ring_reduce_groups_faulted(reducer.clone(), groups, options) {
        Ok(out) => Ok(out),
        Err(RingMapError::Eval(e)) => Err(e),
        Err(RingMapError::Exec(e @ ExecError::DeadlineExceeded { .. })) => {
            Err(EvalError::Other(e.to_string()))
        }
        Err(RingMapError::Exec(e)) => {
            record_degraded("map_reduce (reduce phase)", &e);
            sequential_reduce_groups(reducer, fallback_groups)
        }
    }
}

/// `parallelForEach` over plain Rust data: run `f` once per item with
/// true parallelism. The in-VM block spawns sprite clones instead (see
/// `snap-vm`); this is the embedding-API equivalent.
pub fn parallel_for_each<T: Send + Sync>(
    items: Vec<T>,
    workers: usize,
    f: impl Fn(&T) + Send + Sync,
) {
    snap_workers::Parallel::new(items)
        .with_max_workers(workers)
        .for_each(f);
}

#[cfg(test)]
mod tests {
    use super::{map_reduce as run_map_reduce, parallel_for_each, parallel_map};
    use super::{Arc, Ring, Value};
    use snap_ast::builder::*;

    #[test]
    fn parallel_map_times_ten() {
        let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
        let out = parallel_map(ring, vec![3.into(), 7.into(), 8.into()], 4).unwrap();
        assert_eq!(out, vec![30.into(), 70.into(), 80.into()]);
    }

    #[test]
    fn map_reduce_word_count_matches_paper_fig12() {
        // Figure 11/12: word count over a sentence; output is the sorted
        // unique words with their counts.
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ));
        let words: Vec<Value> = "the quick brown fox jumps over the lazy dog the end"
            .split(' ')
            .map(Value::from)
            .collect();
        let out = run_map_reduce(mapper, reducer, words, 4).unwrap();
        let rendered: Vec<String> = out.iter().map(Value::to_display_string).collect();
        assert_eq!(
            rendered,
            vec![
                "[brown, 1]",
                "[dog, 1]",
                "[end, 1]",
                "[fox, 1]",
                "[jumps, 1]",
                "[lazy, 1]",
                "[over, 1]",
                "[quick, 1]",
                "[the, 3]",
            ]
        );
    }

    #[test]
    fn map_reduce_climate_average_matches_paper_fig13() {
        // Figure 13: mapper converts °F to °C, reducer averages. A single
        // shared key averages the whole dataset.
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["t".into()],
            make_list(vec![
                text("avg"),
                div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
            ]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            div(
                combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                length_of(var("vals")),
            ),
        ));
        // 32 °F → 0 °C, 212 °F → 100 °C: average 50 °C.
        let out = run_map_reduce(mapper, reducer, vec![32.into(), 212.into()], 4).unwrap();
        assert_eq!(out.len(), 1);
        let pair = out[0].as_list().unwrap();
        assert_eq!(pair.item(1).unwrap(), Value::text("avg"));
        assert!((pair.item(2).unwrap().to_number() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn identity_map_function_passes_through() {
        // §3.4: "the map or reduce functions can express the identity
        // function which passes its input argument through unchanged" —
        // here an identity-shaped mapper emits [item, item].
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["x".into()],
            make_list(vec![var("x"), var("x")]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            item(num(1.0), var("vals")),
        ));
        let out = run_map_reduce(mapper, reducer, vec![2.into(), 1.into()], 2).unwrap();
        assert_eq!(
            out,
            vec![
                Value::list(vec![1.into(), 1.into()]),
                Value::list(vec![2.into(), 2.into()]),
            ]
        );
    }

    #[test]
    fn parallel_for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        parallel_for_each((0..50).collect::<Vec<i32>>(), 4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let ring = Arc::new(Ring::reporter(pow(empty_slot(), num(2.0))));
        let items: Vec<Value> = (1..=100).map(|n| Value::Number(n as f64)).collect();
        let expected = parallel_map(ring.clone(), items.clone(), 1).unwrap();
        for workers in [2, 3, 4, 8, 16] {
            assert_eq!(
                parallel_map(ring.clone(), items.clone(), workers).unwrap(),
                expected,
                "worker count {workers} changed the result"
            );
        }
    }
}
