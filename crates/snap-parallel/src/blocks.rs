//! The parallel blocks, as plain functions.
//!
//! These are the semantics of the paper's three new blocks, exposed for
//! embedding code and the benchmark harness. Scripts running inside the
//! VM reach the same implementations through [`crate::WorkerBackend`].
//!
//! The blocks are the last rung of the fault-degradation ladder: when
//! the pooled execution layer gives up (retry budget exhausted), a block
//! never surfaces a panic — it re-runs the whole phase sequentially and
//! injector-free on the calling thread (counted under
//! `fault.degraded_runs`, recorded as a trace note). Deadline failures
//! are the exception: a deadline is a promise to the caller, so they
//! propagate as errors instead of being quietly absorbed by a slower
//! sequential pass.
//!
//! Both `parallelMap` and the `mapReduce` map phase route through
//! `ring_map_faulted`, which detects all-numeric lists at entry and runs
//! them on the **columnar batch tier** (flat `f64` chunks, one
//! `eval_batch` per chunk — see `snap_workers::ColumnarPolicy`). The
//! `mapReduce` mapper typically produces `[key, value]` lists and so
//! stays boxed, but a numeric mapper feeding the shuffle batches too:
//! boxing happens at the pair-validation seam, never inside the map
//! loop.

use std::sync::Arc;

use snap_ast::pure::compile_cached;
use snap_ast::{BinOp, EvalError, Expr, Ring, RingBody, RingExprBody, Value};
use snap_workers::{
    as_map_pair, ring_map_faulted, ring_map_pairs_faulted, ring_reduce_groups_faulted, ExecError,
    FaultPolicy, RingMapError, RingMapOptions,
};

use crate::shuffle::{combine_pairs, shuffle};

/// Record one block-level degradation to sequential execution.
fn record_degraded(block: &'static str, err: &ExecError) {
    snap_trace::well_known::FAULT_DEGRADED_RUNS.incr();
    snap_trace::note(
        "blocks.degraded",
        format!("{block} degraded to sequential: {err}"),
    );
}

/// Injector-free sequential map — the degraded path. Same structured
/// clone semantics as the pooled Copy isolation.
fn sequential_ring_map(ring: Arc<Ring>, items: &[Value]) -> Result<Vec<Value>, EvalError> {
    let f = compile_cached(&ring)?;
    items
        .iter()
        .map(|item| f.call1(item.deep_copy()).map(|v| v.deep_copy()))
        .collect()
}

/// Injector-free sequential reduce over shuffled groups — the degraded
/// path of the reduce phase.
fn sequential_reduce_groups(
    ring: Arc<Ring>,
    groups: Vec<(Value, Vec<Value>)>,
) -> Result<Vec<Value>, EvalError> {
    let f = compile_cached(&ring)?;
    groups
        .into_iter()
        .map(|(key, values)| {
            let arg = Value::list(values.iter().map(Value::deep_copy).collect());
            f.call1(arg)
                .map(|reduced| Value::list(vec![key, reduced.deep_copy()]))
        })
        .collect()
}

/// `parallelMap <ring> over <list>` (paper §3.2): apply the ring to every
/// item on `workers` true parallel workers; results in input order.
pub fn parallel_map(
    ring: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
) -> Result<Vec<Value>, EvalError> {
    parallel_map_with_options(
        ring,
        items,
        RingMapOptions {
            workers,
            ..Default::default()
        },
    )
}

/// [`parallel_map`] under an explicit [`FaultPolicy`].
pub fn parallel_map_with_policy(
    ring: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
    policy: FaultPolicy,
) -> Result<Vec<Value>, EvalError> {
    parallel_map_with_options(
        ring,
        items,
        RingMapOptions {
            workers,
            policy,
            ..Default::default()
        },
    )
}

/// [`parallel_map`] with full execution options, including the fault
/// policy. This is the fault-degradation rung: execution-layer failures
/// other than a missed deadline fall back to a sequential injector-free
/// map instead of surfacing.
pub fn parallel_map_with_options(
    ring: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
) -> Result<Vec<Value>, EvalError> {
    let _span = snap_trace::span!("parallel_map", "items" => items.len());
    // Values are cheap (shallow) to clone; keep a copy so the degraded
    // path can re-run the map after the pooled attempt consumed `items`.
    let fallback = items.clone();
    match ring_map_faulted(ring.clone(), items, options) {
        Ok(out) => Ok(out),
        Err(RingMapError::Eval(e)) => Err(e),
        Err(RingMapError::Exec(e @ ExecError::DeadlineExceeded { .. })) => {
            Err(EvalError::Other(e.to_string()))
        }
        Err(RingMapError::Exec(e)) => {
            record_degraded("parallel_map", &e);
            sequential_ring_map(ring, &fallback)
        }
    }
}

/// `mapReduce <mapper> <reducer> over <list>` (paper §3.4): parallel map
/// phase producing `[key, value]` pairs, sort-by-key shuffle, then a
/// parallel reduce phase — one reducer call per key, receiving that key's
/// value list. Returns `[key, reduced]` pairs in key order.
pub fn map_reduce(
    mapper: Arc<Ring>,
    reducer: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
) -> Result<Vec<Value>, EvalError> {
    map_reduce_with_options(
        mapper,
        reducer,
        items,
        RingMapOptions {
            workers,
            ..Default::default()
        },
    )
}

/// [`map_reduce`] under an explicit [`FaultPolicy`].
pub fn map_reduce_with_policy(
    mapper: Arc<Ring>,
    reducer: Arc<Ring>,
    items: Vec<Value>,
    workers: usize,
    policy: FaultPolicy,
) -> Result<Vec<Value>, EvalError> {
    map_reduce_with_options(
        mapper,
        reducer,
        items,
        RingMapOptions {
            workers,
            policy,
            ..Default::default()
        },
    )
}

/// Whether `mapReduce` may partially reduce pairs on the map side
/// before the shuffle (see [`map_reduce_with_combine`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CombinePolicy {
    /// Combine when the reducer is detected associative
    /// ([`associative_fold_op`]) and the pair count makes it worthwhile.
    #[default]
    Auto,
    /// Never combine: every mapper-emitted pair reaches the shuffle.
    Disabled,
}

/// Below this many pairs the combiner's per-key bookkeeping costs more
/// than the shuffle volume it saves.
pub const COMBINE_MIN_PAIRS: usize = 32;

/// Detect a reducer whose whole body is an associative fold, so partial
/// per-chunk reductions can safely happen before the shuffle.
///
/// The check is deliberately *syntactic and conservative*: the body must
/// be exactly `combine <vals> using (<a> ⊕ <b>)` where `<vals>` is the
/// reducer's own value-list argument (its single named parameter, or an
/// empty slot for implicit-parameter rings), the combining ring's
/// operands are exactly its own two inputs, and `⊕` is `+` or `×` —
/// associative *and* commutative, so regrouping values across worker
/// chunks cannot change the result (word count's integer `+` is
/// bit-exact; float folds accept the usual reassociation). Anything else
/// — the climate example's `combine ÷ length`, identity reducers, `join`
/// (order-sensitive), `-`/`/` (non-associative) — reports `None` and
/// runs uncombined.
pub fn associative_fold_op(reducer: &Ring) -> Option<BinOp> {
    let body = match &reducer.body {
        RingBody::Reporter(e) | RingBody::Predicate(e) => e,
        RingBody::Command(_) => return None,
    };
    let Expr::Combine { list, ring } = body else {
        return None;
    };
    let list_is_own_arg = match (&**list, reducer.params.as_slice()) {
        (Expr::Var(name), [p]) => name == p,
        (Expr::EmptySlot, []) => true,
        _ => false,
    };
    if !list_is_own_arg {
        return None;
    }
    let Expr::Ring(inner) = &**ring else {
        return None;
    };
    let inner_body = match &inner.body {
        RingExprBody::Reporter(e) | RingExprBody::Predicate(e) => e,
        RingExprBody::Command(_) => return None,
    };
    let Expr::Binary(op, a, b) = &**inner_body else {
        return None;
    };
    if !matches!(op, BinOp::Add | BinOp::Mul) {
        return None;
    }
    let operands_are_own_inputs = match inner.params.as_slice() {
        [] => matches!(**a, Expr::EmptySlot) && matches!(**b, Expr::EmptySlot),
        [p0, p1] => {
            matches!(&**a, Expr::Var(n) if n == p0) && matches!(&**b, Expr::Var(n) if n == p1)
        }
        _ => false,
    };
    operands_are_own_inputs.then_some(*op)
}

/// [`map_reduce`] with full execution options. Each phase degrades to
/// its sequential path independently (a healthy reduce still runs
/// pooled even when the map phase had to degrade). Map-side combining
/// runs under the default [`CombinePolicy::Auto`].
pub fn map_reduce_with_options(
    mapper: Arc<Ring>,
    reducer: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
) -> Result<Vec<Value>, EvalError> {
    map_reduce_with_combine(mapper, reducer, items, options, CombinePolicy::Auto)
}

/// [`map_reduce`] with full execution options and an explicit
/// [`CombinePolicy`]. Under `Auto`, when [`associative_fold_op`]
/// recognizes the reducer, each worker partially reduces its chunk's
/// pairs by key *before* the shuffle — shrinking shuffle volume from
/// O(items) to O(workers × keys) with identical output (the reducer then
/// folds per-chunk partials exactly as it would have folded raw values).
pub fn map_reduce_with_combine(
    mapper: Arc<Ring>,
    reducer: Arc<Ring>,
    items: Vec<Value>,
    options: RingMapOptions,
    combine: CombinePolicy,
) -> Result<Vec<Value>, EvalError> {
    let _span = snap_trace::span!("map_reduce", "items" => items.len());
    let fallback_items = items.clone();
    let pairs = match ring_map_pairs_faulted(mapper.clone(), items, options) {
        Ok(pairs) => pairs,
        Err(RingMapError::Eval(e)) => return Err(e),
        Err(RingMapError::Exec(e @ ExecError::DeadlineExceeded { .. })) => {
            return Err(EvalError::Other(e.to_string()))
        }
        Err(RingMapError::Exec(e)) => {
            record_degraded("map_reduce (map phase)", &e);
            sequential_ring_map(mapper, &fallback_items)?
                .into_iter()
                .map(as_map_pair)
                .collect::<Result<Vec<(Value, Value)>, EvalError>>()?
        }
    };
    let pairs = match combine {
        CombinePolicy::Auto if pairs.len() >= COMBINE_MIN_PAIRS => {
            match associative_fold_op(&reducer) {
                Some(op) => combine_pairs(pairs, op, options.workers, options.exec),
                None => pairs,
            }
        }
        _ => pairs,
    };
    let groups = shuffle(pairs);
    let fallback_groups = groups.clone();
    match ring_reduce_groups_faulted(reducer.clone(), groups, options) {
        Ok(out) => Ok(out),
        Err(RingMapError::Eval(e)) => Err(e),
        Err(RingMapError::Exec(e @ ExecError::DeadlineExceeded { .. })) => {
            Err(EvalError::Other(e.to_string()))
        }
        Err(RingMapError::Exec(e)) => {
            record_degraded("map_reduce (reduce phase)", &e);
            sequential_reduce_groups(reducer, fallback_groups)
        }
    }
}

/// `parallelForEach` over plain Rust data: run `f` once per item with
/// true parallelism. The in-VM block spawns sprite clones instead (see
/// `snap-vm`); this is the embedding-API equivalent.
pub fn parallel_for_each<T: Send + Sync>(
    items: Vec<T>,
    workers: usize,
    f: impl Fn(&T) + Send + Sync,
) {
    snap_workers::Parallel::new(items)
        .with_max_workers(workers)
        .for_each(f);
}

#[cfg(test)]
mod tests {
    use super::{map_reduce as run_map_reduce, parallel_for_each, parallel_map};
    use super::{Arc, Ring, Value};
    use snap_ast::builder::*;

    #[test]
    fn parallel_map_times_ten() {
        let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
        let out = parallel_map(ring, vec![3.into(), 7.into(), 8.into()], 4).unwrap();
        assert_eq!(out, vec![30.into(), 70.into(), 80.into()]);
    }

    #[test]
    fn map_reduce_word_count_matches_paper_fig12() {
        // Figure 11/12: word count over a sentence; output is the sorted
        // unique words with their counts.
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ));
        let words: Vec<Value> = "the quick brown fox jumps over the lazy dog the end"
            .split(' ')
            .map(Value::from)
            .collect();
        let out = run_map_reduce(mapper, reducer, words, 4).unwrap();
        let rendered: Vec<String> = out.iter().map(Value::to_display_string).collect();
        assert_eq!(
            rendered,
            vec![
                "[brown, 1]",
                "[dog, 1]",
                "[end, 1]",
                "[fox, 1]",
                "[jumps, 1]",
                "[lazy, 1]",
                "[over, 1]",
                "[quick, 1]",
                "[the, 3]",
            ]
        );
    }

    #[test]
    fn map_reduce_climate_average_matches_paper_fig13() {
        // Figure 13: mapper converts °F to °C, reducer averages. A single
        // shared key averages the whole dataset.
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["t".into()],
            make_list(vec![
                text("avg"),
                div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
            ]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            div(
                combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                length_of(var("vals")),
            ),
        ));
        // 32 °F → 0 °C, 212 °F → 100 °C: average 50 °C.
        let out = run_map_reduce(mapper, reducer, vec![32.into(), 212.into()], 4).unwrap();
        assert_eq!(out.len(), 1);
        let pair = out[0].as_list().unwrap();
        assert_eq!(pair.item(1).unwrap(), Value::text("avg"));
        assert!((pair.item(2).unwrap().to_number() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn identity_map_function_passes_through() {
        // §3.4: "the map or reduce functions can express the identity
        // function which passes its input argument through unchanged" —
        // here an identity-shaped mapper emits [item, item].
        let mapper = Arc::new(Ring::reporter_with_params(
            vec!["x".into()],
            make_list(vec![var("x"), var("x")]),
        ));
        let reducer = Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            item(num(1.0), var("vals")),
        ));
        let out = run_map_reduce(mapper, reducer, vec![2.into(), 1.into()], 2).unwrap();
        assert_eq!(
            out,
            vec![
                Value::list(vec![1.into(), 1.into()]),
                Value::list(vec![2.into(), 2.into()]),
            ]
        );
    }

    #[test]
    fn parallel_for_each_runs_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        parallel_for_each((0..50).collect::<Vec<i32>>(), 4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }

    fn word_count_mapper() -> Arc<Ring> {
        Arc::new(Ring::reporter_with_params(
            vec!["w".into()],
            make_list(vec![var("w"), num(1.0)]),
        ))
    }

    fn word_count_reducer() -> Arc<Ring> {
        Arc::new(Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
        ))
    }

    #[test]
    fn associative_detection_accepts_plain_folds() {
        use super::associative_fold_op;
        use snap_ast::BinOp;
        // Named-parameter form: the word-count reducer.
        assert_eq!(associative_fold_op(&word_count_reducer()), Some(BinOp::Add));
        // Implicit-slot form: combine ( ) using (( ) × ( )).
        let slots = Ring::reporter(combine_using(
            empty_slot(),
            ring_reporter(mul(empty_slot(), empty_slot())),
        ));
        assert_eq!(associative_fold_op(&slots), Some(BinOp::Mul));
        // Named inner parameters.
        let named_inner = Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(
                var("vals"),
                ring_reporter_with(vec!["a", "b"], add(var("a"), var("b"))),
            ),
        );
        assert_eq!(associative_fold_op(&named_inner), Some(BinOp::Add));
    }

    #[test]
    fn associative_detection_rejects_non_folds() {
        use super::associative_fold_op;
        // Climate reducer: combine ÷ length — the root is not the fold.
        let climate = Ring::reporter_with_params(
            vec!["vals".into()],
            div(
                combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                length_of(var("vals")),
            ),
        );
        assert_eq!(associative_fold_op(&climate), None);
        // Identity reducer.
        let identity = Ring::reporter_with_params(vec!["vals".into()], item(num(1.0), var("vals")));
        assert_eq!(associative_fold_op(&identity), None);
        // Non-associative operator.
        let subtract = Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(sub(empty_slot(), empty_slot()))),
        );
        assert_eq!(associative_fold_op(&subtract), None);
        // Fold over something other than the reducer's own argument.
        let wrong_list = Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(
                make_list(vec![num(1.0), num(2.0)]),
                ring_reporter(add(empty_slot(), empty_slot())),
            ),
        );
        assert_eq!(associative_fold_op(&wrong_list), None);
        // Inner ring using a captured/free variable, not its own inputs.
        let free_var = Ring::reporter_with_params(
            vec!["vals".into()],
            combine_using(var("vals"), ring_reporter(add(empty_slot(), var("x")))),
        );
        assert_eq!(associative_fold_op(&free_var), None);
    }

    #[test]
    fn combiner_output_matches_disabled_exactly() {
        use super::{map_reduce_with_combine, CombinePolicy};
        use snap_workers::RingMapOptions;
        // A word corpus big enough to clear COMBINE_MIN_PAIRS, with heavy
        // key repetition and case variation.
        let words = ["the", "The", "fox", "dog", "THE", "a", "dog"];
        let items: Vec<Value> = (0..400).map(|i| words[i % words.len()].into()).collect();
        let options = RingMapOptions {
            workers: 4,
            ..Default::default()
        };
        let combined_before = snap_trace::well_known::SHUFFLE_PAIRS_COMBINED.get();
        let on = map_reduce_with_combine(
            word_count_mapper(),
            word_count_reducer(),
            items.clone(),
            options,
            CombinePolicy::Auto,
        )
        .unwrap();
        assert!(
            snap_trace::well_known::SHUFFLE_PAIRS_COMBINED.get() > combined_before,
            "Auto must actually combine on an associative reducer"
        );
        let off = map_reduce_with_combine(
            word_count_mapper(),
            word_count_reducer(),
            items,
            options,
            CombinePolicy::Disabled,
        )
        .unwrap();
        assert_eq!(on, off, "combining must not change output or ordering");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let ring = Arc::new(Ring::reporter(pow(empty_slot(), num(2.0))));
        let items: Vec<Value> = (1..=100).map(|n| Value::Number(n as f64)).collect();
        let expected = parallel_map(ring.clone(), items.clone(), 1).unwrap();
        for workers in [2, 3, 4, 8, 16] {
            assert_eq!(
                parallel_map(ring.clone(), items.clone(), workers).unwrap(),
                expected,
                "worker count {workers} changed the result"
            );
        }
    }

    #[test]
    fn parallel_map_engages_the_columnar_tier() {
        // The block-level contract of the batch tier: a numeric
        // parallelMap over an all-Number list must flow through
        // eval_batch chunks, and produce the per-element results.
        let chunks_before = snap_trace::well_known::PAR_COLUMNAR_CHUNKS.get();
        let batch_before = snap_trace::well_known::RING_BATCH_ELEMS.get();
        let ring = Arc::new(Ring::reporter(pow(empty_slot(), num(2.0))));
        let items: Vec<Value> = (1..=1000).map(|n| Value::Number(n as f64)).collect();
        let out = parallel_map(ring, items, 4).unwrap();
        assert_eq!(out.len(), 1000);
        assert_eq!(out[9], Value::Number(100.0));
        assert!(snap_trace::well_known::PAR_COLUMNAR_CHUNKS.get() > chunks_before);
        assert!(snap_trace::well_known::RING_BATCH_ELEMS.get() >= batch_before + 1000);
    }
}
