//! The shuffle between MapReduce's phases.
//!
//! "The elements of the intermediate result are sorted by the value of
//! the key in between the map function and the reduce function, as
//! required by the semantics of MapReduce" (paper §3.4, footnote 6).

use snap_ast::Value;

/// Sort `[key, value]` pairs by key (stable, so mapper output order is
/// preserved within a key) and group equal keys.
pub fn shuffle(mut pairs: Vec<(Value, Value)>) -> Vec<(Value, Vec<Value>)> {
    pairs.sort_by(|a, b| a.0.snap_cmp(&b.0));
    let mut groups: Vec<(Value, Vec<Value>)> = Vec::new();
    for (key, value) in pairs {
        match groups.last_mut() {
            Some((k, values)) if k.loose_eq(&key) => values.push(value),
            _ => groups.push((key, vec![value])),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_sorts_and_groups() {
        let pairs = vec![
            ("b".into(), 1.into()),
            ("a".into(), 2.into()),
            ("b".into(), 3.into()),
            ("a".into(), 4.into()),
        ];
        let groups = shuffle(pairs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Value::text("a"));
        assert_eq!(groups[0].1, vec![2.into(), 4.into()]); // stable order
        assert_eq!(groups[1].0, Value::text("b"));
        assert_eq!(groups[1].1, vec![1.into(), 3.into()]);
    }

    #[test]
    fn numeric_keys_sort_numerically() {
        let pairs = vec![
            (10.into(), "x".into()),
            (2.into(), "y".into()),
        ];
        let groups = shuffle(pairs);
        assert_eq!(groups[0].0, Value::Number(2.0));
    }

    #[test]
    fn keys_group_loosely() {
        // "The" and "the" are the same key under Snap! equality.
        let pairs = vec![
            ("The".into(), 1.into()),
            ("the".into(), 1.into()),
        ];
        let groups = shuffle(pairs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(shuffle(Vec::new()).is_empty());
    }
}
