//! The shuffle between MapReduce's phases.
//!
//! "The elements of the intermediate result are sorted by the value of
//! the key in between the map function and the reduce function, as
//! required by the semantics of MapReduce" (paper §3.4, footnote 6).
//!
//! Small inputs use the original sequential stable sort. Large inputs
//! are shuffled in parallel: pairs are hash-partitioned across workers
//! by a canonical key (chosen so `snap_cmp`-equal keys always share a
//! bucket), each bucket is stable-sorted with [`Value::snap_cmp`] on the
//! worker pool, and the sorted buckets are merged. Because equal keys
//! can never sit in different buckets, the merge reproduces the
//! sequential stable sort exactly, and the grouping pass is unchanged.

use snap_ast::Value;
use snap_trace::well_known as metrics;
use snap_workers::{default_workers, map_slice_with, ExecMode, Strategy};

use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Below this many pairs the partition/merge overhead outweighs the
/// parallel sort.
pub const PARALLEL_SHUFFLE_THRESHOLD: usize = 2048;

/// Sort `[key, value]` pairs by key (stable, so mapper output order is
/// preserved within a key) and group equal keys. Dispatches to the
/// parallel path for inputs of [`PARALLEL_SHUFFLE_THRESHOLD`] pairs or
/// more — with at least two buckets, so the threshold contract holds
/// even on single-core hosts (where `default_workers()` is 1 and the
/// pool simply oversubscribes).
pub fn shuffle(pairs: Vec<(Value, Value)>) -> Vec<(Value, Vec<Value>)> {
    if pairs.len() >= PARALLEL_SHUFFLE_THRESHOLD {
        shuffle_parallel(pairs, default_workers().max(2), ExecMode::Pooled)
    } else {
        shuffle_seq(pairs)
    }
}

/// The sequential shuffle: one stable sort, one grouping pass.
pub fn shuffle_seq(mut pairs: Vec<(Value, Value)>) -> Vec<(Value, Vec<Value>)> {
    metrics::SHUFFLE_SEQ_RUNS.incr();
    metrics::SHUFFLE_PAIRS.add(pairs.len() as u64);
    let _span = snap_trace::span!("shuffle.seq", "pairs" => pairs.len());
    pairs.sort_by(|a, b| a.0.snap_cmp(&b.0));
    group_sorted(pairs)
}

/// The parallel shuffle, with explicit worker count and execution mode.
pub fn shuffle_parallel(
    pairs: Vec<(Value, Value)>,
    workers: usize,
    exec: ExecMode,
) -> Vec<(Value, Vec<Value>)> {
    let workers = workers.max(1);
    if workers == 1 || pairs.len() <= 1 {
        return shuffle_seq(pairs);
    }
    metrics::SHUFFLE_PARALLEL_RUNS.incr();
    metrics::SHUFFLE_PAIRS.add(pairs.len() as u64);
    let _span = snap_trace::span!("shuffle.parallel", "pairs" => pairs.len());

    // Partition by canonical key hash. snap_cmp-equal keys hash alike,
    // so every run of equal keys lands in exactly one bucket.
    let bucket_count = workers;
    let mut buckets: Vec<Vec<(Value, Value)>> = (0..bucket_count).map(|_| Vec::new()).collect();
    {
        let _span = snap_trace::span!("shuffle.partition", workers);
        for pair in pairs {
            let slot = (canonical_key_hash(&pair.0) % bucket_count as u64) as usize;
            buckets[slot].push(pair);
        }
    }
    for bucket in &buckets {
        metrics::SHUFFLE_PARTITION_SIZE.record(bucket.len() as u64);
    }

    // Stable-sort each bucket on the pool. Buckets are disjoint; the
    // per-bucket mutex is uncontended and only satisfies the shared-ref
    // signature of the parallel map.
    let buckets: Vec<Mutex<Vec<(Value, Value)>>> = buckets.into_iter().map(Mutex::new).collect();
    {
        let _span = snap_trace::span!("shuffle.sort", workers);
        map_slice_with(&buckets, workers, Strategy::Dynamic, exec, |bucket| {
            bucket
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .sort_by(|a, b| a.0.snap_cmp(&b.0));
        });
    }

    // K-way merge through a binary heap keyed by `snap_cmp`: each
    // emitted pair costs O(log buckets) instead of the old O(buckets)
    // linear leader scan. Heads from different buckets are never
    // snap_cmp-equal (equal keys share a bucket), but the heap still
    // tie-breaks on the (impossible for well-behaved keys) tie by
    // preferring the earliest bucket — the same order the linear scan
    // produced — so the merge reproduces the stable sort exactly.
    let merge_started = Instant::now();
    let _merge_span = snap_trace::span!("shuffle.merge", "buckets" => buckets.len());
    let buckets: Vec<Vec<(Value, Value)>> = buckets
        .into_iter()
        .map(|bucket| bucket.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let total: usize = buckets.iter().map(Vec::len).sum();
    let mut sorted = Vec::with_capacity(total);
    let mut tails: Vec<std::vec::IntoIter<(Value, Value)>> =
        buckets.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<MergeHead> = tails
        .iter_mut()
        .enumerate()
        .filter_map(|(bucket, tail)| tail.next().map(|pair| MergeHead { pair, bucket }))
        .collect();
    while let Some(MergeHead { pair, bucket }) = heap.pop() {
        sorted.push(pair);
        if let Some(pair) = tails[bucket].next() {
            heap.push(MergeHead { pair, bucket });
        }
    }
    metrics::SHUFFLE_MERGE_NS.record(merge_started.elapsed().as_nanos() as u64);
    group_sorted(sorted)
}

/// One bucket's current head pair inside the merge heap. Ordered so the
/// heap's maximum is the *smallest* `(key, bucket)` — `BinaryHeap` is a
/// max-heap, so the comparison is reversed — with the bucket index as
/// tie-break to preserve the earliest-bucket preference.
struct MergeHead {
    pair: (Value, Value),
    bucket: usize,
}

impl Ord for MergeHead {
    fn cmp(&self, other: &MergeHead) -> std::cmp::Ordering {
        other
            .pair
            .0
            .snap_cmp(&self.pair.0)
            .then_with(|| other.bucket.cmp(&self.bucket))
    }
}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &MergeHead) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &MergeHead) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MergeHead {}

/// Group a key-sorted pair list into per-key value lists.
fn group_sorted(pairs: Vec<(Value, Value)>) -> Vec<(Value, Vec<Value>)> {
    let mut groups: Vec<(Value, Vec<Value>)> = Vec::new();
    for (key, value) in pairs {
        match groups.last_mut() {
            Some((k, values)) if k.loose_eq(&key) => values.push(value),
            _ => groups.push((key, vec![value])),
        }
    }
    groups
}

/// Hash such that `a.snap_cmp(b) == Equal` implies equal hashes: keys
/// that coerce to a number (numbers, numeric text, booleans — the same
/// coercion `snap_cmp` uses) hash their normalized numeric value; all
/// others hash their lowercased display string, mirroring `snap_cmp`'s
/// textual branch.
fn canonical_key_hash(key: &Value) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    let numeric = match key {
        Value::Number(n) => Some(*n),
        Value::Text(s) => s.trim().parse::<f64>().ok(),
        Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => None,
    };
    match numeric {
        Some(n) => {
            // Normalize so -0.0 == 0.0 and every NaN coincide, matching
            // comparison semantics.
            let bits = if n == 0.0 {
                0u64
            } else if n.is_nan() {
                f64::NAN.to_bits()
            } else {
                n.to_bits()
            };
            (1u8, bits).hash(&mut hasher);
        }
        None => {
            (2u8, key.to_display_string().to_ascii_lowercase()).hash(&mut hasher);
        }
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_sorts_and_groups() {
        let pairs = vec![
            ("b".into(), 1.into()),
            ("a".into(), 2.into()),
            ("b".into(), 3.into()),
            ("a".into(), 4.into()),
        ];
        let groups = shuffle(pairs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Value::text("a"));
        assert_eq!(groups[0].1, vec![2.into(), 4.into()]); // stable order
        assert_eq!(groups[1].0, Value::text("b"));
        assert_eq!(groups[1].1, vec![1.into(), 3.into()]);
    }

    #[test]
    fn numeric_keys_sort_numerically() {
        let pairs = vec![(10.into(), "x".into()), (2.into(), "y".into())];
        let groups = shuffle(pairs);
        assert_eq!(groups[0].0, Value::Number(2.0));
    }

    #[test]
    fn keys_group_loosely() {
        // "The" and "the" are the same key under Snap! equality.
        let pairs = vec![("The".into(), 1.into()), ("the".into(), 1.into())];
        let groups = shuffle(pairs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(shuffle(Vec::new()).is_empty());
    }

    /// Deterministic mixed-key workload: numeric text, numbers, and
    /// case-varied words, with plenty of collisions.
    fn mixed_pairs(n: usize) -> Vec<(Value, Value)> {
        let words = ["alpha", "Beta", "beta", "GAMMA", "delta"];
        (0..n)
            .map(|i| {
                let key = match i % 4 {
                    0 => Value::Number((i % 17) as f64),
                    1 => Value::text(format!("{}", i % 13)), // numeric text
                    2 => Value::text(words[i % words.len()]),
                    _ => Value::text(words[(i * 7) % words.len()].to_uppercase()),
                };
                (key, Value::Number(i as f64))
            })
            .collect()
    }

    #[test]
    fn parallel_shuffle_matches_sequential_exactly() {
        let pairs = mixed_pairs(5000);
        let seq = shuffle_seq(pairs.clone());
        for workers in [2, 3, 4, 8] {
            for exec in [ExecMode::Pooled, ExecMode::SpawnPerCall] {
                let par = shuffle_parallel(pairs.clone(), workers, exec);
                assert_eq!(par, seq, "workers={workers} exec={exec:?}");
            }
        }
    }

    #[test]
    fn auto_dispatch_crosses_threshold_consistently() {
        let pairs = mixed_pairs(PARALLEL_SHUFFLE_THRESHOLD + 100);
        assert_eq!(shuffle(pairs.clone()), shuffle_seq(pairs));
    }

    #[test]
    fn negative_zero_and_positive_zero_share_a_group() {
        let mut pairs = mixed_pairs(4096);
        pairs.push((Value::Number(0.0), Value::text("pos")));
        pairs.push((Value::Number(-0.0), Value::text("neg")));
        let par = shuffle_parallel(pairs.clone(), 4, ExecMode::Pooled);
        assert_eq!(par, shuffle_seq(pairs));
    }
}
