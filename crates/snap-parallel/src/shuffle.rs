//! The shuffle between MapReduce's phases.
//!
//! "The elements of the intermediate result are sorted by the value of
//! the key in between the map function and the reduce function, as
//! required by the semantics of MapReduce" (paper §3.4, footnote 6).
//!
//! Small inputs use the original sequential stable sort. Large inputs
//! are shuffled in parallel: pairs are hash-partitioned across workers
//! by a canonical key (chosen so `snap_cmp`-equal keys always share a
//! bucket), each bucket is stable-sorted with [`Value::snap_cmp`] on the
//! worker pool, and the sorted buckets are merged. Because equal keys
//! can never sit in different buckets, the merge reproduces the
//! sequential stable sort exactly, and the grouping pass is unchanged.

use snap_ast::pure::eval_binop;
use snap_ast::{BinOp, Value};
use snap_trace::well_known as metrics;
use snap_workers::{default_workers, map_slice_with, ExecMode, Strategy};

use std::collections::{BinaryHeap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Below this many pairs the partition/merge overhead outweighs the
/// parallel sort.
pub const PARALLEL_SHUFFLE_THRESHOLD: usize = 2048;

/// A pair tagged with its pre-computed canonical key.
type KeyedPair = (CanonKey, (Value, Value));

/// Sort `[key, value]` pairs by key (stable, so mapper output order is
/// preserved within a key) and group equal keys. Dispatches to the
/// parallel path for inputs of [`PARALLEL_SHUFFLE_THRESHOLD`] pairs or
/// more — with at least two buckets, so the threshold contract holds
/// even on single-core hosts (where `default_workers()` is 1 and the
/// pool simply oversubscribes).
pub fn shuffle(pairs: Vec<(Value, Value)>) -> Vec<(Value, Vec<Value>)> {
    if pairs.len() >= PARALLEL_SHUFFLE_THRESHOLD {
        shuffle_parallel(pairs, default_workers().max(2), ExecMode::Pooled)
    } else {
        shuffle_seq(pairs)
    }
}

/// The sequential shuffle: one stable sort, one grouping pass.
pub fn shuffle_seq(mut pairs: Vec<(Value, Value)>) -> Vec<(Value, Vec<Value>)> {
    metrics::SHUFFLE_SEQ_RUNS.incr();
    metrics::SHUFFLE_PAIRS.add(pairs.len() as u64);
    let _span = snap_trace::span!("shuffle.seq", "pairs" => pairs.len());
    pairs.sort_by(|a, b| a.0.snap_cmp(&b.0));
    group_sorted(pairs)
}

/// The parallel shuffle, with explicit worker count and execution mode.
pub fn shuffle_parallel(
    pairs: Vec<(Value, Value)>,
    workers: usize,
    exec: ExecMode,
) -> Vec<(Value, Vec<Value>)> {
    let workers = workers.max(1);
    if workers == 1 || pairs.len() <= 1 {
        return shuffle_seq(pairs);
    }
    metrics::SHUFFLE_PARALLEL_RUNS.incr();
    metrics::SHUFFLE_PAIRS.add(pairs.len() as u64);
    // The innermost span open at entry — the map_reduce (or parallelMap)
    // that produced these pairs. The merge span links to it explicitly:
    // by merge time the map-phase spans are closed, so the link is the
    // durable causal edge from the merge back to its originating call.
    let origin = snap_trace::current_span_id();
    let _span = snap_trace::span!("shuffle.parallel", "pairs" => pairs.len());

    // Compute each pair's canonical key exactly once. The partition, the
    // bucket sorts, and the merge all compare/hash this cached digest —
    // previously every comparison re-derived the numeric coercion and
    // lowercased display string from the raw key.
    let bucket_count = workers;
    let mut buckets: Vec<Vec<KeyedPair>> = (0..bucket_count).map(|_| Vec::new()).collect();
    {
        let _span = snap_trace::span!("shuffle.partition", workers);
        for pair in pairs {
            let canon = CanonKey::new(&pair.0);
            let slot = (canon.bucket_hash() % bucket_count as u64) as usize;
            buckets[slot].push((canon, pair));
        }
    }
    for bucket in &buckets {
        metrics::SHUFFLE_PARTITION_SIZE.record(bucket.len() as u64);
    }

    // Stable-sort each bucket on the pool. Buckets are disjoint; the
    // per-bucket mutex is uncontended and only satisfies the shared-ref
    // signature of the parallel map.
    let buckets: Vec<Mutex<Vec<KeyedPair>>> = buckets.into_iter().map(Mutex::new).collect();
    {
        let _span = snap_trace::span!("shuffle.sort", workers);
        map_slice_with(&buckets, workers, Strategy::Dynamic, exec, |bucket| {
            bucket
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .sort_by(|a, b| a.0.cmp_canon(&b.0));
        });
    }

    // K-way merge through a binary heap keyed by the cached canonical
    // key: each emitted pair costs O(log buckets) instead of the old
    // O(buckets) linear leader scan. Heads from different buckets are
    // never canon-equal (equal keys share a bucket), but the heap still
    // tie-breaks on the (impossible for well-behaved keys) tie by
    // preferring the earliest bucket — the same order the linear scan
    // produced — so the merge reproduces the stable sort exactly.
    let merge_started = Instant::now();
    let _merge_span =
        snap_trace::span_linked_with("shuffle.merge", "buckets", buckets.len() as u64, origin);
    let buckets: Vec<Vec<KeyedPair>> = buckets
        .into_iter()
        .map(|bucket| bucket.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let total: usize = buckets.iter().map(Vec::len).sum();
    let mut sorted = Vec::with_capacity(total);
    let mut tails: Vec<std::vec::IntoIter<KeyedPair>> =
        buckets.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<MergeHead> = tails
        .iter_mut()
        .enumerate()
        .filter_map(|(bucket, tail)| {
            tail.next().map(|(canon, pair)| MergeHead {
                canon,
                pair,
                bucket,
            })
        })
        .collect();
    while let Some(MergeHead { pair, bucket, .. }) = heap.pop() {
        sorted.push(pair);
        if let Some((canon, pair)) = tails[bucket].next() {
            heap.push(MergeHead {
                canon,
                pair,
                bucket,
            });
        }
    }
    metrics::SHUFFLE_MERGE_NS.record(merge_started.elapsed().as_nanos() as u64);
    group_sorted(sorted)
}

/// One bucket's current head pair inside the merge heap. Ordered so the
/// heap's maximum is the *smallest* `(key, bucket)` — `BinaryHeap` is a
/// max-heap, so the comparison is reversed — with the bucket index as
/// tie-break to preserve the earliest-bucket preference. Comparison uses
/// the pre-computed [`CanonKey`], never the raw key.
struct MergeHead {
    canon: CanonKey,
    pair: (Value, Value),
    bucket: usize,
}

impl Ord for MergeHead {
    fn cmp(&self, other: &MergeHead) -> std::cmp::Ordering {
        other
            .canon
            .cmp_canon(&self.canon)
            .then_with(|| other.bucket.cmp(&self.bucket))
    }
}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &MergeHead) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &MergeHead) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MergeHead {}

/// Group a key-sorted pair list into per-key value lists.
fn group_sorted(pairs: Vec<(Value, Value)>) -> Vec<(Value, Vec<Value>)> {
    let mut groups: Vec<(Value, Vec<Value>)> = Vec::new();
    for (key, value) in pairs {
        match groups.last_mut() {
            Some((k, values)) if k.loose_eq(&key) => values.push(value),
            _ => groups.push((key, vec![value])),
        }
    }
    groups
}

/// A key's canonical comparison form, derived once per pair.
///
/// `Value::snap_cmp` re-derives the numeric coercion (trim + parse for
/// text) and the lowercased display string on *every* comparison — an
/// O(n log n) sort re-pays that per-key cost O(log n) times. `CanonKey`
/// pays it once and the sort/merge compare the cached digest.
struct CanonKey {
    /// The numeric coercion, when the key has one (the same rule
    /// `snap_cmp` uses: numbers, numeric text, booleans).
    num: Option<f64>,
    /// Lowercased display string — `snap_cmp`'s textual branch. Always
    /// stored, even for numeric keys: a numeric key still compares
    /// *textually* against a non-numeric one, using its original
    /// display form (e.g. `Text(" 5 ")` displays as `" 5 "`).
    text: String,
}

impl CanonKey {
    fn new(key: &Value) -> CanonKey {
        let num = match key {
            Value::Number(n) => Some(*n),
            Value::Text(s) => s.trim().parse::<f64>().ok(),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        };
        CanonKey {
            num,
            text: key.to_display_string().to_ascii_lowercase(),
        }
    }

    /// Mirrors [`Value::snap_cmp`] exactly: numeric when both sides
    /// coerce, case-insensitive textual otherwise.
    fn cmp_canon(&self, other: &CanonKey) -> std::cmp::Ordering {
        match (self.num, other.num) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal),
            _ => self.text.cmp(&other.text),
        }
    }

    /// Hash such that `cmp_canon == Equal` implies equal hashes: numeric
    /// keys hash their normalized value (`-0.0` folded to `0.0`, all
    /// NaNs coincide); all others hash the lowercased display string.
    fn bucket_hash(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        match self.num {
            Some(n) => {
                let bits = if n == 0.0 {
                    0u64
                } else if n.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    n.to_bits()
                };
                (1u8, bits).hash(&mut hasher);
            }
            None => {
                (2u8, &self.text).hash(&mut hasher);
            }
        }
        hasher.finish()
    }
}

/// Hash a raw key's canonical form (see [`CanonKey::bucket_hash`]).
/// `snap_cmp`-equal keys hash alike; used by the combiner's key index.
fn canonical_key_hash(key: &Value) -> u64 {
    CanonKey::new(key).bucket_hash()
}

/// Map-side combiner: partially reduce `[key, value]` pairs by key with
/// the associative operator `op` *before* the shuffle, in parallel over
/// per-worker chunks. Output holds at most `workers × distinct-keys`
/// pairs, preserving first-occurrence pair order within each chunk — so
/// a subsequent [`shuffle`]'s stable sort groups keys in exactly the
/// order the uncombined pairs would have produced.
///
/// Each key's first value is kept as-is (matching `combine`'s
/// single-element semantics) and later values are folded in emission
/// order with [`eval_binop`], so for an associative, commutative `op`
/// the reduce phase sees the same fold it would have computed itself —
/// word count's integer `+` is bit-exact; float reassociation across
/// chunk boundaries is inherent to map-side combining.
pub fn combine_pairs(
    pairs: Vec<(Value, Value)>,
    op: BinOp,
    workers: usize,
    exec: ExecMode,
) -> Vec<(Value, Value)> {
    let workers = workers.max(1);
    let before = pairs.len();
    if before == 0 {
        return pairs;
    }
    let _span = snap_trace::span!("shuffle.combine", "pairs" => before);
    let chunk_len = before.div_ceil(workers).max(1);
    let chunks: Vec<&[(Value, Value)]> = pairs.chunks(chunk_len).collect();
    let combined = map_slice_with(&chunks, workers, Strategy::Dynamic, exec, |chunk| {
        combine_chunk(chunk, op)
    });
    let out: Vec<(Value, Value)> = combined.into_iter().flatten().collect();
    metrics::SHUFFLE_COMBINE_RUNS.incr();
    metrics::SHUFFLE_PAIRS_COMBINED.add((before - out.len()) as u64);
    out
}

/// Reduce one chunk's pairs by key, preserving first-occurrence order.
/// Keys match by `loose_eq` — the same predicate [`group_sorted`] uses —
/// looked up through a canonical-hash index instead of a linear scan.
fn combine_chunk(chunk: &[(Value, Value)], op: BinOp) -> Vec<(Value, Value)> {
    let mut order: Vec<(Value, Value)> = Vec::new();
    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
    for (key, value) in chunk {
        let slots = index.entry(canonical_key_hash(key)).or_default();
        match slots.iter().find(|&&i| order[i].0.loose_eq(key)) {
            Some(&i) => {
                let folded = eval_binop(op, &order[i].1, value);
                order[i].1 = folded;
            }
            None => {
                slots.push(order.len());
                order.push((key.clone(), value.clone()));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_sorts_and_groups() {
        let pairs = vec![
            ("b".into(), 1.into()),
            ("a".into(), 2.into()),
            ("b".into(), 3.into()),
            ("a".into(), 4.into()),
        ];
        let groups = shuffle(pairs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, Value::text("a"));
        assert_eq!(groups[0].1, vec![2.into(), 4.into()]); // stable order
        assert_eq!(groups[1].0, Value::text("b"));
        assert_eq!(groups[1].1, vec![1.into(), 3.into()]);
    }

    #[test]
    fn numeric_keys_sort_numerically() {
        let pairs = vec![(10.into(), "x".into()), (2.into(), "y".into())];
        let groups = shuffle(pairs);
        assert_eq!(groups[0].0, Value::Number(2.0));
    }

    #[test]
    fn keys_group_loosely() {
        // "The" and "the" are the same key under Snap! equality.
        let pairs = vec![("The".into(), 1.into()), ("the".into(), 1.into())];
        let groups = shuffle(pairs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(shuffle(Vec::new()).is_empty());
    }

    /// Deterministic mixed-key workload: numeric text, numbers, and
    /// case-varied words, with plenty of collisions.
    fn mixed_pairs(n: usize) -> Vec<(Value, Value)> {
        let words = ["alpha", "Beta", "beta", "GAMMA", "delta"];
        (0..n)
            .map(|i| {
                let key = match i % 4 {
                    0 => Value::Number((i % 17) as f64),
                    1 => Value::text(format!("{}", i % 13)), // numeric text
                    2 => Value::text(words[i % words.len()]),
                    _ => Value::text(words[(i * 7) % words.len()].to_uppercase()),
                };
                (key, Value::Number(i as f64))
            })
            .collect()
    }

    #[test]
    fn parallel_shuffle_matches_sequential_exactly() {
        let pairs = mixed_pairs(5000);
        let seq = shuffle_seq(pairs.clone());
        for workers in [2, 3, 4, 8] {
            for exec in [ExecMode::Pooled, ExecMode::SpawnPerCall] {
                let par = shuffle_parallel(pairs.clone(), workers, exec);
                assert_eq!(par, seq, "workers={workers} exec={exec:?}");
            }
        }
    }

    #[test]
    fn auto_dispatch_crosses_threshold_consistently() {
        let pairs = mixed_pairs(PARALLEL_SHUFFLE_THRESHOLD + 100);
        assert_eq!(shuffle(pairs.clone()), shuffle_seq(pairs));
    }

    #[test]
    fn negative_zero_and_positive_zero_share_a_group() {
        let mut pairs = mixed_pairs(4096);
        pairs.push((Value::Number(0.0), Value::text("pos")));
        pairs.push((Value::Number(-0.0), Value::text("neg")));
        let par = shuffle_parallel(pairs.clone(), 4, ExecMode::Pooled);
        assert_eq!(par, shuffle_seq(pairs));
    }

    #[test]
    fn canon_key_cmp_mirrors_snap_cmp_exactly() {
        // Every ordering decision the sort/merge makes on the cached
        // digest must equal what snap_cmp would have said on the raw
        // keys — checked over a cross product of the awkward shapes.
        let keys: Vec<Value> = vec![
            Value::Number(2.0),
            Value::Number(10.0),
            Value::Number(0.0),
            Value::Number(-0.0),
            Value::Number(-3.5),
            Value::Number(f64::NAN),
            Value::text("2"),
            Value::text(" 10 "),
            Value::text("alpha"),
            Value::text("ALPHA"),
            Value::text("beta"),
            Value::text(""),
            Value::text("true"),
            Value::Bool(true),
            Value::Bool(false),
            Value::Nothing,
            Value::list(vec![1.into(), 2.into()]),
        ];
        for a in &keys {
            let ca = CanonKey::new(a);
            for b in &keys {
                let cb = CanonKey::new(b);
                assert_eq!(
                    ca.cmp_canon(&cb),
                    a.snap_cmp(b),
                    "CanonKey diverged from snap_cmp for {a:?} vs {b:?}"
                );
                // snap_cmp equality is not transitive across its two
                // branches — NaN is "equal" to every number (partial_cmp
                // falls back to Equal), and a numeric key can compare
                // textually-equal to a non-numeric one (Bool(true) vs
                // Text("true")) while being numerically-equal to others.
                // No hash can honor a non-equivalence, so the bucket
                // invariant is asserted where it is coherent: same-regime
                // pairs without NaN. (Cross-regime stragglers still sort
                // adjacent and group correctly after the merge.)
                let nan_edge = matches!(ca.num, Some(n) if n.is_nan())
                    != matches!(cb.num, Some(n) if n.is_nan());
                let same_regime = ca.num.is_some() == cb.num.is_some();
                if ca.cmp_canon(&cb) == std::cmp::Ordering::Equal && same_regime && !nan_edge {
                    assert_eq!(
                        ca.bucket_hash(),
                        cb.bucket_hash(),
                        "equal keys must share a bucket: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn combine_pairs_folds_keys_per_chunk() {
        // One worker → one chunk → each key appears exactly once, first
        // value kept as the fold seed, later values added.
        let pairs: Vec<(Value, Value)> = vec![
            ("the".into(), 1.into()),
            ("fox".into(), 1.into()),
            ("the".into(), 1.into()),
            ("The".into(), 1.into()), // loose_eq-same key, case-varied
        ];
        let out = combine_pairs(pairs, BinOp::Add, 1, ExecMode::Pooled);
        assert_eq!(
            out,
            vec![("the".into(), 3.into()), ("fox".into(), 1.into())],
            "first-occurrence key and order must be preserved"
        );
    }

    #[test]
    fn combine_pairs_single_value_kept_uncoerced() {
        // combine over a one-element list reports the element itself, so
        // a lone pair must pass through without numeric coercion.
        let pairs: Vec<(Value, Value)> = vec![("k".into(), "seven".into())];
        let out = combine_pairs(pairs, BinOp::Add, 4, ExecMode::Pooled);
        assert_eq!(out, vec![("k".into(), "seven".into())]);
    }

    #[test]
    fn combined_shuffle_reduces_to_same_groups() {
        // End to end: combining before the shuffle must leave group keys
        // and per-group sums identical — only the pair count shrinks.
        let pairs = mixed_pairs(5000);
        let plain = shuffle(pairs.clone());
        let combined = shuffle(combine_pairs(pairs, BinOp::Add, 4, ExecMode::Pooled));
        assert_eq!(plain.len(), combined.len(), "same group count");
        for ((k1, v1), (k2, v2)) in plain.iter().zip(&combined) {
            assert_eq!(k1, k2, "group keys must match in order");
            let sum = |vs: &[Value]| vs.iter().map(Value::to_number).sum::<f64>();
            assert_eq!(sum(v1), sum(v2), "per-key totals must match for {k1:?}");
            assert!(v2.len() <= v1.len());
        }
    }

    #[test]
    fn combine_pairs_counts_eliminated_pairs() {
        let before = metrics::SHUFFLE_PAIRS_COMBINED.get();
        let pairs: Vec<(Value, Value)> = (0..100)
            .map(|i| (Value::Number((i % 5) as f64), 1.into()))
            .collect();
        let out = combine_pairs(pairs, BinOp::Add, 2, ExecMode::Pooled);
        // 2 chunks × 5 keys = 10 surviving pairs, 90 eliminated.
        assert_eq!(out.len(), 10);
        assert_eq!(metrics::SHUFFLE_PAIRS_COMBINED.get() - before, 90);
    }
}
