//! Offline stand-in for `serde`.
//!
//! The real serde could not be vendored (the build environment has no
//! network access), so this crate provides the small slice of its API the
//! workspace actually uses: `Serialize`/`Deserialize` traits, the derive
//! macros, and a JSON value tree (re-exported by the sibling `serde_json`
//! stub). The data model is the JSON tree itself rather than serde's
//! visitor machinery — every consumer in this workspace round-trips
//! through JSON, so nothing is lost by the simplification.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Types that can render themselves as a JSON value tree.
pub trait Serialize {
    /// Convert `self` into a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON value tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(json::Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::from_json_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(std::rc::Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_json_value(it.next().ok_or_else(|| {
                                Error::custom("tuple too short")
                            })?)?,
                        )+))
                    }
                    other => Err(Error::custom(format!(
                        "expected tuple array, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}
