//! The JSON value tree, text parser and printers.

use std::fmt;

/// Deserialization / serialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error carrying a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number. Stored as `f64`; prints with Rust's shortest-roundtrip
/// float formatting (integral values print without a fraction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(f64);

impl Number {
    /// Wrap a float.
    pub fn from_f64(n: f64) -> Number {
        Number(n)
    }

    /// The wrapped float.
    pub fn as_f64(&self) -> f64 {
        self.0
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 9e15 {
            write!(f, "{}", self.0 as i64)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl std::str::FromStr for Number {
    type Err = std::num::ParseFloatError;
    fn from_str(s: &str) -> Result<Number, Self::Err> {
        s.parse::<f64>().map(Number)
    }
}

/// An insertion-ordered string → value map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Borrow the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON text (two-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.0.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, item)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {word:?} at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_word("null").map(|_| Value::Null),
            Some(b't') => self.eat_word("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(|n| Value::Number(Number(n)))
            .map_err(|_| Error::custom(format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run of bytes up to the next quote or
                    // escape; UTF-8 continuation bytes can never be `"`
                    // or `\`, so the run boundary is always a char
                    // boundary and one validation covers the whole run.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid utf8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']', found {other:?}"
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}', found {other:?}"
                    )))
                }
            }
        }
    }
}
