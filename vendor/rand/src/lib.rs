//! Offline stand-in for `rand`.
//!
//! Mirrors the names this workspace uses from rand 0.10 — `rngs::StdRng`,
//! [`SeedableRng`], [`RngExt::random_range`], `seq::SliceRandom` — on a
//! splitmix64 generator. Deterministic for a given seed (the workspace
//! seeds every RNG explicitly), but the stream differs from the real
//! crate's, which no caller depends on.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The standard generator: splitmix64 (fast, full 64-bit period
    /// guarantees are irrelevant for test-data generation).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate small seeds.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw a uniform sample using `bits` as the entropy source.
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (bits() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (bits() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (bits() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let unit = (bits() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut bits = || self.next_u64();
        range.sample(&mut bits)
    }

    /// Uniform boolean.
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0i64..1000), b.random_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let n = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
