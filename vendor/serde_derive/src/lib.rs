//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes this workspace
//! derives on: non-generic structs with named fields, tuple structs, and
//! enums whose variants are unit, tuple, or struct-like. Enums use
//! serde's externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: named (`Some(name)`) or positional (`None`).
struct Field {
    name: Option<String>,
}

enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, … }` or `struct S(T, …);`
    Struct(Vec<Field>),
    /// `enum E { V, V(T,…), V { a: T, … }, … }`
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_item(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    gen_serialize(&parsed).parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_item(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    gen_deserialize(&parsed).parse().unwrap()
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generics on {name}"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            None | Some(TokenTree::Punct(_)) => Ok(Parsed {
                name,
                shape: Shape::UnitStruct,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?
                    .into_iter()
                    .map(|n| Field { name: Some(n) })
                    .collect();
                Ok(Parsed {
                    name,
                    shape: Shape::Struct(fields),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                Ok(Parsed {
                    name,
                    shape: Shape::Struct((0..arity).map(|_| Field { name: None }).collect()),
                })
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Parsed {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive for {other}")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + [bracket group]
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Split a token stream at top-level commas (angle-bracket aware).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tuple_arity(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => continue,
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match chunk.get(i) {
            None => VariantShape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantShape::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                VariantShape::Unit // discriminant; value ignored
            }
            other => return Err(format!("unsupported variant body: {other:?}")),
        };
        variants.push((name, shape));
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::UnitStruct => "::serde::json::Value::Null".to_string(),
        Shape::Struct(fields) => {
            if fields.iter().all(|f| f.name.is_some()) && !fields.is_empty() {
                let mut s = String::from("{ let mut __m = ::serde::json::Map::new();\n");
                for f in fields {
                    let n = f.name.as_ref().unwrap();
                    s.push_str(&format!(
                        "__m.insert({n:?}.to_string(), ::serde::Serialize::to_json_value(&self.{n}));\n"
                    ));
                }
                s.push_str("::serde::json::Value::Object(__m) }");
                s
            } else {
                let items: Vec<String> = (0..fields.len())
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::json::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut __m = ::serde::json::Map::new();\n\
                             __m.insert({vname:?}.to_string(), {payload});\n\
                             ::serde::json::Value::Object(__m)\n}}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inner =
                            String::from("let mut __fields = ::serde::json::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.insert({f:?}.to_string(), ::serde::Serialize::to_json_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n{inner}\
                             let mut __m = ::serde::json::Map::new();\n\
                             __m.insert({vname:?}.to_string(), ::serde::json::Value::Object(__fields));\n\
                             ::serde::json::Value::Object(__m)\n}}\n",
                            binds = fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Struct(fields) => {
            if fields.iter().all(|f| f.name.is_some()) && !fields.is_empty() {
                let mut s = format!(
                    "let __obj = __v.as_object().ok_or_else(|| ::serde::json::Error::custom(\
                     format!(\"{name}: expected object, found {{__v:?}}\")))?;\n\
                     Ok({name} {{\n"
                );
                for f in fields {
                    let n = f.name.as_ref().unwrap();
                    s.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_json_value(__obj.get({n:?})\
                         .ok_or_else(|| ::serde::json::Error::custom(\"{name}: missing field {n}\"))?)?,\n"
                    ));
                }
                s.push_str("})");
                s
            } else {
                let mut s = format!(
                    "let __items = match __v {{\n\
                     ::serde::json::Value::Array(items) => items,\n\
                     other => return Err(::serde::json::Error::custom(\
                     format!(\"{name}: expected array, found {{other:?}}\"))),\n}};\n\
                     Ok({name}(\n"
                );
                for i in 0..fields.len() {
                    s.push_str(&format!(
                        "::serde::Deserialize::from_json_value(__items.get({i})\
                         .ok_or_else(|| ::serde::json::Error::custom(\"{name}: tuple too short\"))?)?,\n"
                    ));
                }
                s.push_str("))");
                s
            }
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => return Ok({name}::{vname}),\n"))
                    }
                    VariantShape::Tuple(arity) => {
                        if *arity == 1 {
                            tagged_arms.push_str(&format!(
                                "{vname:?} => return Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_json_value(__payload)?)),\n"
                            ));
                        } else {
                            let mut items = String::new();
                            for i in 0..*arity {
                                items.push_str(&format!(
                                    "::serde::Deserialize::from_json_value(__items.get({i})\
                                     .ok_or_else(|| ::serde::json::Error::custom(\"{name}::{vname}: tuple too short\"))?)?,\n"
                                ));
                            }
                            tagged_arms.push_str(&format!(
                                "{vname:?} => {{\n\
                                 let __items = match __payload {{\n\
                                 ::serde::json::Value::Array(items) => items,\n\
                                 other => return Err(::serde::json::Error::custom(\
                                 format!(\"{name}::{vname}: expected array, found {{other:?}}\"))),\n}};\n\
                                 return Ok({name}::{vname}({items}));\n}}\n"
                            ));
                        }
                    }
                    VariantShape::Named(fields) => {
                        let mut inner = format!(
                            "let __fields = __payload.as_object().ok_or_else(|| \
                             ::serde::json::Error::custom(\"{name}::{vname}: expected object\"))?;\n\
                             return Ok({name}::{vname} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_json_value(__fields.get({f:?})\
                                 .unwrap_or(&::serde::json::Value::Null))?,\n"
                            ));
                        }
                        inner.push_str("});");
                        tagged_arms.push_str(&format!("{vname:?} => {{\n{inner}\n}}\n"));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::json::Value::String(__s) => {{\n\
                 match __s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::json::Error::custom(\
                 format!(\"{name}: unknown unit variant {{other:?}}\"))),\n}}\n}}\n\
                 ::serde::json::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __payload) = __m.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 other => Err(::serde::json::Error::custom(\
                 format!(\"{name}: unknown variant {{other:?}}\"))),\n}}\n}}\n\
                 other => Err(::serde::json::Error::custom(\
                 format!(\"{name}: expected string or single-key object, found {{other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(__v: &::serde::json::Value) -> Result<Self, ::serde::json::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
