//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses: the
//! [`strategy::Strategy`] trait (`prop_map`, `boxed`, `prop_recursive`),
//! range / tuple / `&str`-regex / [`strategy::Just`] strategies,
//! `prop::collection::vec`, `any::<T>()`, and the `proptest!` /
//! `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from the real crate: inputs are generated from a fixed
//! deterministic seed (no persisted failure file) and there is **no
//! shrinking** — a failing case reports the assertion directly. Case
//! counts honour `ProptestConfig::with_cases`.

pub mod test_runner {
    /// Deterministic splitmix64 generator used for all input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Build a generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Test-harness settings. Only `cases` is meaningful in the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives one property: hands out a fresh deterministic RNG per case.
    pub struct TestRunner {
        /// The active configuration (read by the `proptest!` expansion).
        pub config: ProptestConfig,
    }

    impl TestRunner {
        /// Build a runner for `config`.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Independent generator for case number `case`.
        pub fn rng_for_case(&self, case: u32) -> TestRng {
            TestRng::seed_from_u64(0x5EED_CA5E ^ ((case as u64) << 17) ^ case as u64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking; a
    /// strategy is just a cloneable generator function.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let inner = self;
            BoxedStrategy {
                gen: Rc::new(move |rng| inner.generate(rng)),
            }
        }

        /// Build a recursive strategy: at each of `depth` levels the
        /// generator picks between the leaf (`self`) and one application
        /// of `recurse` to the strategy built so far, so generated values
        /// nest at most `depth` deep. `desired_size` and
        /// `expected_branch_size` are accepted for API compatibility but
        /// the stub bounds size through `depth` alone.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut strat = self.clone().boxed();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                strat = Union::new(vec![self.clone().boxed(), branch]).boxed();
            }
            strat
        }
    }

    /// Type-erased, cloneable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `&str` strategies are interpreted as a small regex subset:
    /// an optional `(?s)` flag, then a sequence of atoms — `[...]`
    /// character classes (ranges, leading `^` negation), `.`, or literal
    /// characters — each optionally followed by `{m}` / `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

/// Translation of the supported regex subset into generated strings.
mod string {
    use crate::test_runner::TestRng;

    struct Atom {
        /// Candidate characters for this position.
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Printable ASCII, the universe for `.` and negated classes.
    fn printable(dot_all: bool) -> Vec<char> {
        let mut chars: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        if dot_all {
            chars.push('\n');
            chars.push('\t');
        }
        chars
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut rest = pattern;
        let mut dot_all = false;
        for flag in ["(?s)", "(?m)", "(?sm)", "(?ms)"] {
            if let Some(stripped) = rest.strip_prefix(flag) {
                dot_all = flag.contains('s');
                rest = stripped;
            }
        }
        let chars: Vec<char> = rest.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let candidates = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let mut body = &chars[i + 1..close];
                    let negated = body.first() == Some(&'^');
                    if negated {
                        body = &body[1..];
                    }
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                            assert!(lo <= hi, "bad range in pattern {pattern:?}");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            let c = if body[j] == '\\' && j + 1 < body.len() {
                                j += 1;
                                body[j]
                            } else {
                                body[j]
                            };
                            set.push(c);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    if negated {
                        printable(false)
                            .into_iter()
                            .filter(|c| !set.contains(c))
                            .collect()
                    } else {
                        set
                    }
                }
                '.' => {
                    i += 1;
                    printable(dot_all)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional {m} / {m,n} quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad quantifier in pattern {pattern:?}");
            atoms.push(Atom {
                chars: candidates,
                min,
                max,
            });
        }
        atoms
    }

    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            assert!(
                !atom.chars.is_empty(),
                "empty character class in {pattern:?}"
            );
            for _ in 0..count {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, broad range; avoids NaN/inf which the real crate
            // also excludes by default.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy generating unconstrained values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors whose length falls in a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias so `prop::collection::vec` resolves, mirroring the real
    /// crate's prelude.
    pub use crate as prop;
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assertion inside a `proptest!` body (no shrinking in the stub, so it
/// is a plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for `config.cases` generated
/// inputs. An optional `#![proptest_config(expr)]` header sets the config.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($items)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let runner = $crate::test_runner::TestRunner::new(config);
                for case in 0..runner.config.cases {
                    let mut proptest_case_rng = runner.rng_for_case(case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_case_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    ($($items:tt)*) => {
        $crate::proptest!(
            @expand ($crate::test_runner::ProptestConfig::default()) $($items)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_and_regex(
            n in -50i64..50,
            f in -1.5f64..1.5,
            s in "[a-c]{1,4}",
            b in any::<bool>(),
            v in prop::collection::vec(0u32..10, 0..5),
        ) {
            prop_assert!((-50..50).contains(&n));
            prop_assert!((-1.5..1.5).contains(&f));
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let _ = b;
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => usize::from(*n >= 0),
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let runner =
            crate::test_runner::TestRunner::new(crate::test_runner::ProptestConfig::with_cases(64));
        for case in 0..64 {
            let mut rng = runner.rng_for_case(case);
            let tree = strat.generate(&mut rng);
            // 3 recursion levels plus the leaf itself.
            assert!(depth(&tree) <= 7, "depth {} too deep", depth(&tree));
        }
    }

    #[test]
    fn negated_class_and_dot_all() {
        let runner = crate::test_runner::TestRunner::new(Default::default());
        let mut rng = runner.rng_for_case(0);
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&"[^<]{0,60}", &mut rng);
            assert!(!s.contains('<'));
            let t = crate::strategy::Strategy::generate(&"(?s).{0,40}", &mut rng);
            assert!(t.len() <= 40);
        }
    }
}
