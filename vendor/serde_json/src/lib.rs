//! Offline stand-in for `serde_json`, backed by the `serde` stub's JSON
//! value tree. Provides the functions and types this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], plus [`Value`], [`Number`], [`Map`] and [`Error`].

pub use serde::json::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string())
}

/// Serialize to pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_json_string_pretty())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text)?;
    T::from_json_value(&value)
}

/// Convert a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let v = Value::Array(vec![
            Value::Null,
            Value::Bool(true),
            Value::Number(Number::from_f64(1.5)),
            Value::String("a \"b\"\n".into()),
        ]);
        let text = v.to_json_string();
        let back = serde::json::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_text_parses_back() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Number(Number::from_f64(3.0)));
        m.insert("nested".into(), Value::Array(vec![Value::Bool(false)]));
        let v = Value::Object(m);
        let back = serde::json::parse(&v.to_json_string_pretty()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_roundtrip_through_traits() {
        let n: f64 = from_str(&to_string(&1.25f64).unwrap()).unwrap();
        assert_eq!(n, 1.25);
        let s: String = from_str(&to_string("hi there").unwrap()).unwrap();
        assert_eq!(s, "hi there");
        let v: Vec<Option<bool>> = from_str(&to_string(&vec![Some(true), None]).unwrap()).unwrap();
        assert_eq!(v, vec![Some(true), None]);
    }
}
