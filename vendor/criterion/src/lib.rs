//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness with criterion's API shape:
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`. Each benchmark runs a short
//! warm-up, then collects `sample_size` samples (each timing a batch
//! sized so a sample takes roughly a millisecond) and reports the median
//! per-iteration time on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the target measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declared throughput: accepted and ignored (the stub reports only
    /// per-iteration times).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.name);
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up, and estimate the per-iteration cost.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample's batch so samples fit the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / batch as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples_ns.is_empty() {
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let label = if group.is_empty() {
            id.to_owned()
        } else {
            format!("{group}/{id}")
        };
        println!(
            "{label:<50} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the
            // stub has no filtering, so arguments are ignored.
            $( $group(); )+
        }
    };
}
