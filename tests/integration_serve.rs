//! End-to-end acceptance of the continuous-telemetry tier: a live
//! `snap_trace::serve` endpoint must answer `/metrics` with windowed
//! shuffle percentiles while a MapReduce workload runs, `/profile` must
//! capture the pool mid-flight as folded stacks, and `/report.json`
//! counters must reconcile with an in-process `ExecutionReport` — all
//! WITHOUT span recording enabled, because the continuous tier is
//! always on.
//!
//! Everything lives in ONE test: the trace registry is process-global,
//! and a single test keeps counter reconciliation free of interference
//! from sibling tests on other threads (this binary has no others).

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_parallel::{map_reduce, PARALLEL_SHUFFLE_THRESHOLD};

/// Plain blocking HTTP GET against the test server.
fn get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The value of the first Prometheus sample line starting with `prefix`.
fn prom_value(body: &str, prefix: &str) -> f64 {
    let line = body
        .lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no {prefix:?} line in /metrics:\n{body}"));
    line.rsplit_once(' ')
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("unparseable sample line: {line}"))
}

/// One shuffle-threshold-crossing MapReduce iteration.
fn run_workload() {
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    // High key cardinality so even the combined pair stream crosses the
    // parallel-shuffle threshold (4 chunks × 700 keys ≥ 2048).
    let words: Vec<Value> = (0..3 * PARALLEL_SHUFFLE_THRESHOLD)
        .map(|i| Value::text(format!("w{}", i % 700)))
        .collect();
    let groups = map_reduce(mapper, reducer, words, 4).expect("map_reduce runs");
    assert_eq!(groups.len(), 700);
}

#[test]
fn live_endpoint_serves_windows_profile_and_reconcilable_report() {
    // Span recording stays OFF: windows, counters, and the profiler are
    // the always-on tier this test accepts.
    assert!(!snap_trace::enabled());
    let server = snap_trace::serve("127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // --- /profile concurrent with the workload ----------------------
    // The profiler samples every registered thread's span stack; the
    // GET blocks for its sampling window, so it runs on a helper thread
    // while this thread keeps the pool and the shuffle busy.
    let profiler = std::thread::spawn(move || get(addr, "/profile?seconds=1&hz=199"));
    let busy_until = Instant::now() + Duration::from_millis(1600);
    let mut iterations = 0u32;
    while Instant::now() < busy_until {
        run_workload();
        iterations += 1;
    }
    assert!(iterations > 0);
    let (status, folded) = profiler.join().expect("profile thread");
    assert_eq!(status, 200);
    assert!(!folded.is_empty(), "folded profile is empty");
    for line in folded.lines() {
        let (_stack, count) = line.rsplit_once(' ').expect("folded `stack count` shape");
        assert!(count.parse::<u64>().is_ok(), "bad sample count: {line}");
    }
    assert!(
        folded.contains("snap-worker"),
        "pool workers missing from the profile:\n{folded}"
    );
    assert!(
        folded.contains("exec.chunk") || folded.contains("shuffle."),
        "no pool/shuffle leaves captured mid-workload:\n{folded}"
    );

    // --- /metrics has live windowed percentiles ---------------------
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let merge_p99 = prom_value(
        &metrics,
        "snap_shuffle_merge_ns_window{quantile=\"0.99\",window=\"60s\"}",
    );
    assert!(
        merge_p99 > 0.0,
        "windowed shuffle-merge p99 must be live after {iterations} shuffles"
    );
    let window_count = prom_value(&metrics, "snap_shuffle_merge_ns_window_count");
    assert!(window_count >= iterations as f64);
    // Cumulative summary and per-worker utilization ride along.
    assert!(metrics.contains("snap_shuffle_merge_ns{quantile=\"0.99\"}"));
    assert!(metrics.contains("snap_pool_worker_jobs{worker=\"0\"}"));
    let scraped_jobs = prom_value(&metrics, "snap_pool_jobs_executed ");

    // --- /report.json reconciles with the in-process report ---------
    let (status, report_json) = get(addr, "/report.json");
    assert_eq!(status, 200);
    let doc = serde::json::parse(&report_json).expect("report JSON parses");
    let counters = doc
        .as_object()
        .and_then(|o| o.get("counters"))
        .and_then(|c| c.as_object())
        .expect("counters object");
    let counter = |name: &str| -> f64 {
        match counters.get(name) {
            Some(serde_json::Value::Number(n)) => n.as_f64(),
            other => panic!("counter {name:?} missing or non-numeric: {other:?}"),
        }
    };
    // The continuous tier's self-audit counters are all live.
    assert!(counter("pool.jobs_executed") > 0.0);
    assert!(counter("shuffle.parallel_runs") >= iterations as f64);
    assert!(counter("trace.metrics_scrapes") >= 1.0);
    assert!(counter("trace.profile_samples") > 0.0);
    assert!(counter("trace.overhead_ns") > 0.0);
    assert_eq!(counter("trace.spans_dropped"), 0.0);
    // Monotonic reconciliation: the scrape happened before this final
    // in-process snapshot, so every scraped value is a lower bound.
    let report = snap_trace::report();
    assert!(scraped_jobs <= report.counter("pool.jobs_executed") as f64);
    assert!(counter("pool.jobs_executed") <= report.counter("pool.jobs_executed") as f64);
    let scraped_per_worker: f64 = (0..64)
        .map_while(|id| {
            let prefix = format!("snap_pool_worker_jobs{{worker=\"{id}\"}}");
            metrics
                .lines()
                .find(|l| l.starts_with(&prefix))
                .and_then(|l| l.rsplit_once(' '))
                .and_then(|(_, v)| v.parse::<f64>().ok())
        })
        .sum();
    let final_per_worker: u64 = report.executed_per_worker.iter().sum();
    assert!(
        scraped_per_worker > 0.0 && scraped_per_worker <= final_per_worker as f64,
        "scraped per-worker jobs {scraped_per_worker} must bound-check against {final_per_worker}"
    );

    server.shutdown();
}
