//! End-to-end acceptance of the snap-trace subsystem: a traced
//! `ring_map` over 10k elements must emit a well-formed Chrome
//! `trace_event` JSON containing pool, chunk, and shuffle spans, and
//! the registry counters must reconcile with the pool's own
//! `executed_per_worker` totals.
//!
//! Everything lives in ONE test: the trace registry is process-global,
//! and a single test keeps counter reconciliation free of interference
//! from sibling tests on other threads (this binary has no others).

use std::sync::Arc;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_core::trace;
use snap_parallel::{map_reduce, parallel_map, PARALLEL_SHUFFLE_THRESHOLD};
use snap_trace::well_known as metrics;
use snap_workers::global_pool;

#[test]
fn traced_run_emits_reconcilable_trace_and_report() {
    trace::set_enabled(true);

    // --- a 10k-element parallel ring map ----------------------------
    let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
    let items: Vec<Value> = (0..10_000).map(|n| Value::Number(n as f64)).collect();
    let out = parallel_map(ring, items, 4).expect("traced map runs");
    assert_eq!(out.len(), 10_000);
    assert_eq!(out[7], Value::Number(70.0));

    // --- a map_reduce big enough to cross the shuffle threshold -----
    // The associative `+` reducer triggers map-side combining, so the
    // key cardinality must be high enough that even the combined pair
    // stream (≤ workers × keys) still crosses the parallel-shuffle
    // threshold: 4 chunks × 700 keys ≈ 2800 ≥ 2048.
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let words: Vec<Value> = (0..3 * PARALLEL_SHUFFLE_THRESHOLD)
        .map(|i| Value::text(format!("w{}", i % 700)))
        .collect();
    let groups = map_reduce(mapper, reducer, words, 4).expect("traced map_reduce runs");
    assert_eq!(groups.len(), 700);

    trace::set_enabled(false);

    // --- the Chrome trace is well-formed and has the right spans ----
    let spans = trace::collect_spans();
    let json = trace::chrome_trace_json(&spans);
    let doc = serde::json::parse(&json).expect("chrome trace JSON parses");
    let events = match doc.as_object().and_then(|o| o.get("traceEvents")) {
        Some(serde_json::Value::Array(events)) => events,
        other => panic!("no traceEvents array: {other:?}"),
    };
    assert_eq!(events.len(), spans.len());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.as_object()?.get("name")?.as_str())
        .collect();
    for required in [
        "exec.pooled",    // pool-level task span
        "exec.chunk",     // dynamic chunk claims
        "exec.map_slice", // the gather
        "ring_map",
        "shuffle.combine", // map-side combiner on the associative reducer
        "shuffle.parallel",
        "shuffle.partition",
        "shuffle.sort",
        "shuffle.merge",
    ] {
        assert!(
            names.contains(&required),
            "trace missing span {required:?}; have: {names:?}"
        );
    }
    for event in events {
        let object = event.as_object().expect("event object");
        for field in ["name", "ph", "ts", "dur", "pid", "tid"] {
            assert!(object.get(field).is_some(), "event missing {field}");
        }
        assert_eq!(object.get("ph").and_then(|v| v.as_str()), Some("X"));
    }

    // --- counters reconcile with the pool's own accounting ----------
    let report = trace::report();
    let per_worker = global_pool().executed_per_worker();
    let total: u64 = per_worker.iter().sum();
    assert_eq!(
        report.pool_jobs_executed_total(),
        total,
        "report per-worker view must be the global pool's counters"
    );
    assert_eq!(
        report.counter("pool.jobs_executed"),
        total,
        "executed counter must reconcile with executed_per_worker"
    );
    assert_eq!(
        report.counter("pool.jobs_submitted"),
        total,
        "every submitted job was executed once the run is quiescent"
    );
    assert!(report.counter("exec.chunks_claimed") > 0);
    assert!(report.counter("ring_map.items") >= 10_000);
    assert!(report.counter("shuffle.parallel_runs") >= 1);
    assert!(report.counter("compile_cache.misses") >= 1);

    // --- ring bytecode + combiner counters --------------------------
    // The ×10 map ring is numeric over an all-Number list → the run must
    // take the columnar batch tier: every one of its 10k elements flows
    // through eval_batch chunks, with no per-element dispatch. The
    // word-count mapper's make_list body runs boxed bytecode; the
    // associative reducer engages the combiner.
    assert!(report.counter("ring.bytecode_compiles") >= 2);
    assert!(report.counter("ring.batch_elems") >= 10_000);
    assert!(report.counter("ring.batch_calls") >= 1);
    assert!(report.counter("par.columnar_chunks") >= 1);
    assert!(report.counter("ring.bytecode_calls") >= 1);
    assert!(report.counter("shuffle.combine_runs") >= 1);
    assert!(
        report.counter("shuffle.pairs_combined") > 0,
        "combiner must have eliminated pairs before the shuffle"
    );

    // --- both report renderings carry the reconciled numbers --------
    let table = report.to_table();
    assert!(table.contains("pool.jobs_executed"));
    assert!(table.contains("spans"));
    let report_json = report.to_json();
    let parsed = serde::json::parse(&report_json).expect("report JSON parses");
    let counters = parsed
        .as_object()
        .and_then(|o| o.get("counters"))
        .and_then(|v| v.as_object())
        .expect("counters object");
    assert!(counters.get("pool.jobs_executed").is_some());

    // --- JSONL export: one parseable object per span ----------------
    let jsonl = trace::spans_jsonl(&spans);
    assert_eq!(jsonl.lines().count(), spans.len());
    for line in jsonl.lines().take(50) {
        serde::json::parse(line).expect("JSONL line parses");
    }

    // Nothing was silently dropped in a run this small.
    assert_eq!(report.dropped_spans, 0);
    let _ = metrics::POOL_QUEUE_DEPTH.get(); // gauge readable
}
