//! End-to-end acceptance of the fault-tolerance layer: injected panics
//! are retried with backoff and never corrupt results, deadlines turn
//! hangs into typed errors, exhausted retry budgets fall back in a
//! fixed order (in-worker retries → executor salvage → sequential
//! degradation at the blocks layer), and the whole thing reconciles in
//! the metrics registry: every panicked attempt is either retried or a
//! final failure.
//!
//! The fault injector is process-global, so every test serializes on
//! [`injector_lock`] and uninstalls the injector before releasing it.
//!
//! The `#[ignore]`d chaos test at the bottom is the CI `chaos` job: a
//! heavier stress run driven by `SNAP_FAULT_SEED`, writing its trace
//! and report artifacts under `target/ci/chaos/` for upload when red.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use snap_ast::builder::*;
use snap_ast::{Ring, Value};
use snap_parallel::{map_reduce_with_policy, parallel_map_with_options, parallel_map_with_policy};
use snap_trace::well_known as metrics;
use snap_workers::{
    install_injector, try_map_slice_with, ColumnarPolicy, ExecError, ExecMode, FaultInjector,
    FaultPolicy, RingMapOptions, Strategy,
};

/// Serializes tests that install the process-global fault injector.
fn injector_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Snapshot of the counters the reconciliation invariant ties together.
#[derive(Clone, Copy)]
struct FaultCounters {
    panicked: u64,
    retried: u64,
    final_failures: u64,
    reassigned: u64,
    degraded: u64,
}

impl FaultCounters {
    fn snapshot() -> FaultCounters {
        FaultCounters {
            panicked: metrics::POOL_JOBS_PANICKED.get(),
            retried: metrics::FAULT_RETRIES_SCHEDULED.get(),
            final_failures: metrics::FAULT_FAILURES_FINAL.get(),
            reassigned: metrics::FAULT_ITEMS_REASSIGNED.get(),
            degraded: metrics::FAULT_DEGRADED_RUNS.get(),
        }
    }

    fn delta_since(&self, before: &FaultCounters) -> FaultCounters {
        FaultCounters {
            panicked: self.panicked - before.panicked,
            retried: self.retried - before.retried,
            final_failures: self.final_failures - before.final_failures,
            reassigned: self.reassigned - before.reassigned,
            degraded: self.degraded - before.degraded,
        }
    }
}

fn times_ten_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
}

fn number_items(n: usize) -> Vec<Value> {
    (0..n).map(|i| Value::Number(i as f64)).collect()
}

// ---------------------------------------------------------------------
// Acceptance: 20% injected panics, 3 retries, 10k-item parallelMap.
// ---------------------------------------------------------------------

#[test]
fn acceptance_injected_panics_recover_with_retries() {
    let _guard = injector_lock();
    let before = FaultCounters::snapshot();

    install_injector(Some(FaultInjector::new(0xACCE).panic_probability(0.2)));
    let policy = FaultPolicy::with_retries(3).backoff(Duration::from_micros(50));
    let out = parallel_map_with_policy(times_ten_ring(), number_items(10_000), 4, policy);
    install_injector(None);

    let out = out.expect("20% panics under a 3-retry policy still complete");
    assert_eq!(out.len(), 10_000);
    for (i, value) in out.iter().enumerate() {
        assert_eq!(
            *value,
            Value::Number(i as f64 * 10.0),
            "item {i} out of order or corrupted"
        );
    }

    let delta = FaultCounters::snapshot().delta_since(&before);
    assert!(
        delta.panicked > 0,
        "a 20% injector over 10k items must actually panic"
    );
    // Every panicked attempt was either rescheduled or became a final
    // failure — nothing double-counted, nothing lost.
    assert_eq!(
        delta.panicked,
        delta.retried + delta.final_failures,
        "jobs_panicked must reconcile with retries_scheduled + failures_final"
    );
    // Items that exhausted 1+3 attempts (~0.2^4 of 10k) were salvaged
    // sequentially rather than failing the call.
    assert_eq!(delta.reassigned, delta.final_failures);
    assert_eq!(delta.degraded, 0, "the pooled path itself must not degrade");
}

// ---------------------------------------------------------------------
// Deadlines: a typed error instead of a hang, completed work reported.
// ---------------------------------------------------------------------

#[test]
fn deadline_exceeded_is_a_typed_error_not_a_hang() {
    let _guard = injector_lock();
    install_injector(None);

    let items: Vec<u64> = (0..64).collect();
    let policy = FaultPolicy::default().deadline(Duration::from_millis(2));
    let result = try_map_slice_with(
        &items,
        2,
        Strategy::Dynamic,
        ExecMode::Pooled,
        &policy,
        |n| {
            std::thread::sleep(Duration::from_millis(1));
            n * 2
        },
    );
    match result {
        Err(ExecError::DeadlineExceeded { completed, total }) => {
            assert_eq!(total, 64);
            assert!(
                completed < total,
                "a deadline error implies skipped work, got {completed}/{total}"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn deadline_errors_propagate_through_blocks_without_degrading() {
    let _guard = injector_lock();
    install_injector(None);
    let before = FaultCounters::snapshot();

    // A ring slow enough that 4096 items cannot finish in 1ms (each
    // item folds a 500-number list): the blocks layer must hand the
    // deadline to the caller, not silently re-run the whole phase
    // sequentially (a deadline is a promise).
    let ring = Arc::new(Ring::reporter(combine_using(
        numbers_from_to(num(1.0), num(500.0)),
        ring_reporter(add(empty_slot(), empty_slot())),
    )));
    let policy = FaultPolicy::default().deadline(Duration::from_millis(1));
    let result = parallel_map_with_policy(ring, number_items(4096), 2, policy);

    let err = match result {
        Err(err) => format!("{err}"),
        Ok(out) => panic!("expected a deadline error, got {} results", out.len()),
    };
    assert!(
        err.contains("deadline exceeded"),
        "error should name the deadline: {err}"
    );
    let delta = FaultCounters::snapshot().delta_since(&before);
    assert_eq!(delta.degraded, 0, "deadlines must never degrade");
}

// ---------------------------------------------------------------------
// Retry budgets: 0 retries fails fast like the seed; exhausted budgets
// fall back in order (salvage first, sequential degradation last).
// ---------------------------------------------------------------------

#[test]
fn zero_retry_policy_fails_fast_on_first_panic() {
    let _guard = injector_lock();
    install_injector(Some(FaultInjector::new(7).panic_probability(1.0)));

    let items: Vec<u64> = (0..32).collect();
    let result = try_map_slice_with(
        &items,
        2,
        Strategy::Dynamic,
        ExecMode::Pooled,
        &FaultPolicy::default(),
        |n| n + 1,
    );
    install_injector(None);

    match result {
        Err(ExecError::RetriesExhausted {
            failed_items,
            last_message,
        }) => {
            assert!(failed_items >= 1);
            assert!(
                last_message.contains("injected fault"),
                "panic message must survive into the error: {last_message}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn zero_retry_policy_is_equivalent_to_seed_on_the_happy_path() {
    let _guard = injector_lock();
    install_injector(None);
    let before = FaultCounters::snapshot();

    let items: Vec<u64> = (0..1000).collect();
    let out = try_map_slice_with(
        &items,
        4,
        Strategy::Dynamic,
        ExecMode::Pooled,
        &FaultPolicy::default(),
        |n| n * 3,
    )
    .expect("no injector, no faults");
    assert_eq!(out, items.iter().map(|n| n * 3).collect::<Vec<_>>());

    let delta = FaultCounters::snapshot().delta_since(&before);
    assert_eq!(delta.panicked, 0);
    assert_eq!(delta.retried, 0);
    assert_eq!(delta.reassigned, 0);
}

#[test]
fn exhausted_retries_salvage_sequentially_in_order() {
    let _guard = injector_lock();
    let before = FaultCounters::snapshot();

    // Every pooled attempt panics; the salvage pass runs injector-free,
    // so with retries > 0 the call still completes, in order.
    install_injector(Some(FaultInjector::new(11).panic_probability(1.0)));
    let items: Vec<u64> = (0..64).collect();
    let policy = FaultPolicy::with_retries(2).backoff(Duration::from_micros(10));
    let out = try_map_slice_with(
        &items,
        2,
        Strategy::Dynamic,
        ExecMode::Pooled,
        &policy,
        |n| n + 100,
    );
    install_injector(None);

    let out = out.expect("salvage pass completes every exhausted item");
    assert_eq!(out, (100..164).collect::<Vec<u64>>());

    let delta = FaultCounters::snapshot().delta_since(&before);
    assert_eq!(delta.reassigned, 64, "every item had to be salvaged");
    assert_eq!(delta.panicked, delta.retried + delta.final_failures);
}

#[test]
fn blocks_degrade_to_sequential_when_retries_are_zero() {
    let _guard = injector_lock();
    let before = FaultCounters::snapshot();

    // With no retry budget the executor fails fast — and the blocks
    // layer is the last rung of the ladder: re-run sequentially (the
    // sequential path consults no injector) rather than surface a
    // worker panic to a VM script.
    install_injector(Some(FaultInjector::new(13).panic_probability(1.0)));
    let out = parallel_map_with_policy(
        times_ten_ring(),
        number_items(256),
        4,
        FaultPolicy::default(),
    );
    install_injector(None);

    let out = out.expect("blocks layer degrades instead of failing");
    assert_eq!(out.len(), 256);
    assert_eq!(out[13], Value::Number(130.0));

    let delta = FaultCounters::snapshot().delta_since(&before);
    assert!(delta.degraded >= 1, "the degraded run must be recorded");
}

// ---------------------------------------------------------------------
// The CI chaos job: heavier stress under a fixed seed, with artifacts.
// Run with: cargo test --release --test integration_faults -- --ignored
// ---------------------------------------------------------------------

#[test]
#[ignore = "chaos stress; run by the CI chaos job with SNAP_FAULT_SEED set"]
fn chaos_stress_is_deterministic_under_a_fixed_seed() {
    let _guard = injector_lock();
    let seed: u64 = std::env::var("SNAP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_240_806);
    println!("chaos seed: {seed}");

    snap_trace::set_enabled(true);
    let chaos_injector = FaultInjector::new(seed)
        .panic_probability(0.2)
        .delay_probability(0.05, Duration::from_micros(200));
    let policy = FaultPolicy::with_retries(3).backoff(Duration::from_micros(50));

    // Two identical parallelMap rounds: both must produce correct
    // results, and — because injection is a pure function of
    // (seed, item, attempt) — both must inject the same number of
    // first-attempt panics. Columnar is disabled so the injector keys
    // on every *item* (the columnar tier keys on chunks — stressed
    // separately below) and the per-item retry ladder gets the full
    // 10k-attempt pounding.
    let per_item = RingMapOptions {
        workers: 4,
        policy,
        columnar: ColumnarPolicy::Disabled,
        ..Default::default()
    };
    let mut first_attempt_panics = Vec::new();
    for round in 0..2 {
        let before = metrics::FAULT_INJECTED_PANICS.get();
        let before_all = FaultCounters::snapshot();
        install_injector(Some(chaos_injector));
        let out = parallel_map_with_options(times_ten_ring(), number_items(10_000), per_item);
        install_injector(None);
        let out = out.expect("chaos round completes");
        assert_eq!(out.len(), 10_000);
        for (i, value) in out.iter().enumerate() {
            assert_eq!(
                *value,
                Value::Number(i as f64 * 10.0),
                "round {round} item {i}"
            );
        }
        let delta = FaultCounters::snapshot().delta_since(&before_all);
        assert_eq!(delta.panicked, delta.retried + delta.final_failures);
        first_attempt_panics.push(metrics::FAULT_INJECTED_PANICS.get() - before);
        println!(
            "round {round}: {} injected panics, {} retried, {} salvaged",
            first_attempt_panics[round], delta.retried, delta.reassigned
        );
    }

    // The columnar batch tier under the same chaos: with Auto the
    // all-numeric map moves flat f64 chunks through the pool, so the
    // injector keys on *chunk* descriptors and a panic retries the
    // whole chunk. Results must still be exact, and two identical
    // rounds must inject identically.
    let mut columnar_panics = Vec::new();
    for round in 0..2 {
        let before = metrics::FAULT_INJECTED_PANICS.get();
        let chunks_before = metrics::PAR_COLUMNAR_CHUNKS.get();
        install_injector(Some(chaos_injector));
        let out = parallel_map_with_options(
            times_ten_ring(),
            number_items(10_000),
            RingMapOptions {
                columnar: ColumnarPolicy::Auto,
                ..per_item
            },
        );
        install_injector(None);
        let out = out.expect("columnar chaos round completes");
        assert_eq!(out.len(), 10_000);
        for (i, value) in out.iter().enumerate() {
            assert_eq!(
                *value,
                Value::Number(i as f64 * 10.0),
                "columnar round {round} item {i}"
            );
        }
        assert!(
            metrics::PAR_COLUMNAR_CHUNKS.get() > chunks_before,
            "the numeric chaos map must take the columnar tier"
        );
        columnar_panics.push(metrics::FAULT_INJECTED_PANICS.get() - before);
        println!(
            "columnar round {round}: {} injected chunk panics",
            columnar_panics[round]
        );
    }
    assert_eq!(
        columnar_panics[0], columnar_panics[1],
        "identical columnar rounds under one seed must inject identically"
    );

    // A faulty mapReduce round: grouped results survive chaos too.
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let words: Vec<Value> = (0..4_000)
        .map(|i| Value::text(format!("w{}", i % 97)))
        .collect();
    install_injector(Some(chaos_injector));
    let groups = map_reduce_with_policy(mapper, reducer, words, 4, policy);
    install_injector(None);
    let groups = groups.expect("chaos mapReduce completes");
    assert_eq!(groups.len(), 97, "one group per distinct word");

    snap_trace::set_enabled(false);

    // Artifacts for the CI chaos job (uploaded when the job is red).
    let chaos_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/ci/chaos");
    std::fs::create_dir_all(&chaos_dir).expect("chaos artifact dir");
    let spans = snap_trace::take_spans();
    let notes = snap_trace::take_notes();
    let trace = snap_trace::chrome_trace_json_with_notes(&spans, &notes);
    std::fs::write(chaos_dir.join("chaos_trace.json"), trace).expect("write chaos trace");
    let report = snap_trace::report().to_json();
    std::fs::write(chaos_dir.join("chaos_report.json"), report).expect("write chaos report");
    println!("chaos artifacts written to {}", chaos_dir.display());

    assert_eq!(
        first_attempt_panics[0], first_attempt_panics[1],
        "identical rounds under one seed must inject identically"
    );
    assert!(
        first_attempt_panics[0] > 1_000,
        "a 20% injector over 10k items should fire often; got {}",
        first_attempt_panics[0]
    );
}
