//! Integration tests for the parallel blocks: VM × workers × data.

use std::sync::Arc;

use snap_core::data::{
    generate_noaa, generate_word_values, generate_words, reference_counts, NoaaConfig,
};
use snap_core::prelude::*;

fn times_ten_ring() -> Arc<Ring> {
    Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))))
}

#[test]
fn parallel_map_agrees_with_sequential_map_at_scale() {
    let mut session = Session::load(Project::new("t").with_sprite(SpriteDef::new("S")));
    let inputs = numbers_from_to(num(1.0), num(5000.0));
    let sequential = session
        .eval(
            Some("S"),
            &map_over(ring_reporter(mul(empty_slot(), num(10.0))), inputs.clone()),
        )
        .unwrap();
    let parallel = session
        .eval(
            Some("S"),
            &parallel_map_with_workers(
                ring_reporter(mul(empty_slot(), num(10.0))),
                inputs,
                num(8.0),
            ),
        )
        .unwrap();
    assert_eq!(sequential, parallel);
}

#[test]
fn worker_counts_are_result_invariant_for_rings_with_state() {
    // Rings capturing environment values still evaluate identically on
    // every worker.
    let ring = Arc::new(
        Ring::reporter(add(empty_slot(), var("offset")))
            .with_captured(vec![("offset".into(), Value::Number(1000.0))]),
    );
    let items: Vec<Value> = (0..500).map(|n| Value::Number(n as f64)).collect();
    let baseline = snap_core::parallel::parallel_map(ring.clone(), items.clone(), 1).unwrap();
    for workers in [2, 3, 5, 8, 13] {
        assert_eq!(
            snap_core::parallel::parallel_map(ring.clone(), items.clone(), workers).unwrap(),
            baseline
        );
    }
}

#[test]
fn map_reduce_word_count_matches_reference_on_generated_corpus() {
    let words = generate_words(5000, 99);
    let reference = reference_counts(&words);
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["w".into()],
        make_list(vec![var("w"), num(1.0)]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let out = snap_core::parallel::map_reduce(mapper, reducer, generate_word_values(5000, 99), 4)
        .unwrap();
    assert_eq!(out.len(), reference.len());
    for (pair, (word, count)) in out.iter().zip(&reference) {
        let pair = pair.as_list().unwrap();
        assert_eq!(pair.item(1).unwrap().to_display_string(), *word);
        assert_eq!(pair.item(2).unwrap().to_number() as u64, *count);
    }
}

#[test]
fn climate_map_reduce_recovers_the_dataset_mean() {
    let dataset = generate_noaa(&NoaaConfig {
        stations: 10,
        years: 5,
        readings_per_year: 12,
        ..NoaaConfig::default()
    });
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["t".into()],
        make_list(vec![
            text("avg"),
            div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
        ]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        div(
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            length_of(var("vals")),
        ),
    ));
    let out =
        snap_core::parallel::map_reduce(mapper, reducer, dataset.temps_f_values(), 4).unwrap();
    let avg_c = out[0].as_list().unwrap().item(2).unwrap().to_number();
    let expected = snap_core::data::f_to_c(dataset.mean_f());
    assert!((avg_c - expected).abs() < 1e-6, "{avg_c} vs {expected}");
}

#[test]
fn per_station_map_reduce_produces_one_group_per_station() {
    // Mapper keyed by station: [station, °C]; reducer averages — the
    // "per-station climate" variant of the classroom exercise.
    let dataset = generate_noaa(&NoaaConfig {
        stations: 7,
        years: 3,
        readings_per_year: 12,
        ..NoaaConfig::default()
    });
    let items: Vec<Value> = dataset
        .readings
        .iter()
        .map(|r| Value::list(vec![r.station.clone().into(), r.temp_f.into()]))
        .collect();
    let mapper = Arc::new(Ring::reporter_with_params(
        vec!["row".into()],
        make_list(vec![
            item(num(1.0), var("row")),
            div(
                mul(num(5.0), sub(item(num(2.0), var("row")), num(32.0))),
                num(9.0),
            ),
        ]),
    ));
    let reducer = Arc::new(Ring::reporter_with_params(
        vec!["vals".into()],
        div(
            combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
            length_of(var("vals")),
        ),
    ));
    let out = snap_core::parallel::map_reduce(mapper, reducer, items, 4).unwrap();
    assert_eq!(out.len(), 7);
    // Southern stations (low index) are warmer.
    let first = out[0].as_list().unwrap().item(2).unwrap().to_number();
    let last = out[6].as_list().unwrap().item(2).unwrap().to_number();
    assert!(
        first > last,
        "ST000 ({first}) should be warmer than ST006 ({last})"
    );
}

#[test]
fn vm_parallel_for_each_processes_large_lists_with_bounded_clones() {
    let n = 100.0;
    let project = Project::new("pfe")
        .with_global("done", Constant::Number(0.0))
        .with_sprite(SpriteDef::new("W").with_script(Script::on_green_flag(vec![
            parallel_for_each_n(
                "it",
                numbers_from_to(num(1.0), num(n)),
                num(8.0),
                vec![change_var("done", num(1.0))],
            ),
            say(var("done")),
        ])));
    let mut session = Session::load(project);
    session.run();
    assert_eq!(session.said(), vec!["100"]);
    assert_eq!(session.vm.world.live_clone_count(), 0, "clones cleaned up");
}

#[test]
fn parallel_map_in_worker_pool_handles_nested_lists() {
    // Items are lists; the ring sums each one: checks structured-clone
    // isolation with nested structures.
    let ring = Arc::new(Ring::reporter_with_params(
        vec!["xs".into()],
        combine_using(var("xs"), ring_reporter(add(empty_slot(), empty_slot()))),
    ));
    let items: Vec<Value> = (0..100)
        .map(|i| {
            Value::list(vec![
                Value::Number(i as f64),
                Value::Number(1.0),
                Value::Number(2.0),
            ])
        })
        .collect();
    let out = snap_core::parallel::parallel_map(ring, items, 4).unwrap();
    assert_eq!(out[0], Value::Number(3.0));
    assert_eq!(out[99], Value::Number(102.0));
}

#[test]
fn backend_errors_surface_as_script_errors_not_panics() {
    // item 10 of a 1-element list inside parallelMap → script error.
    let project = Project::new("err").with_sprite(SpriteDef::new("S").with_script(
        Script::on_green_flag(vec![
            say(parallel_map_over(
                ring_reporter(item(num(10.0), empty_slot())),
                make_list(vec![make_list(vec![num(1.0)])]),
            )),
            say(text("unreachable")),
        ]),
    ));
    let mut session = Session::load(project);
    session.run();
    assert!(session.said().is_empty());
    assert_eq!(session.errors().len(), 1);
}

#[test]
fn ring_map_shares_one_compiled_function_across_workers() {
    // Smoke test that a single compiled PureFn is reused: 10k items
    // through 8 workers completes quickly and correctly.
    let items: Vec<Value> = (0..10_000).map(|n| Value::Number(n as f64)).collect();
    let out = snap_core::parallel::parallel_map(times_ten_ring(), items, 8).unwrap();
    assert_eq!(out.len(), 10_000);
    assert_eq!(out[9_999], Value::Number(99_990.0));
}
