//! Cross-crate integration tests: whole projects through the public API.

use snap_core::prelude::*;

/// The paper's Fig. 2/3 dragon project: a forever-moving sprite steered
/// by arrow keys.
fn dragon_project() -> Project {
    Project::new("dragon").with_sprite(
        SpriteDef::new("Dragon")
            .with_script(Script::on_green_flag(vec![forever(vec![move_steps(num(
                2.0,
            ))])]))
            .with_script(Script::on_key(
                "right arrow",
                vec![Stmt::TurnRight(num(15.0))],
            ))
            .with_script(Script::on_key(
                "left arrow",
                vec![Stmt::TurnLeft(num(15.0))],
            )),
    )
}

#[test]
fn dragon_flies_and_steers() {
    let mut session = Session::load(dragon_project());
    session.vm.green_flag();
    session.vm.run_frames(10);
    let x_after_10 = session.vm.world.sprites[1].x;
    assert!(x_after_10 > 0.0, "the dragon moves right while heading 90");

    // Steer left twice: two key presses, each one turn block.
    session.vm.key_press("left arrow");
    session.vm.key_press("left arrow");
    session.vm.run_frames(5);
    assert_eq!(session.vm.world.sprites[1].heading, 60.0);

    // The forever loop keeps running: stop needs the red button.
    assert!(session.vm.process_count() >= 1);
}

#[test]
fn project_survives_save_load_run_cycle() {
    let project = Project::new("roundtrip")
        .with_global("total", Constant::Number(0.0))
        .with_sprite(
            SpriteDef::new("Adder").with_script(Script::on_green_flag(vec![
                for_loop(
                    "i",
                    num(1.0),
                    num(100.0),
                    vec![change_var("total", var("i"))],
                ),
                say(var("total")),
            ])),
        );
    let json = project.to_json();
    let reloaded = Project::from_json(&json).expect("valid project JSON");
    assert_eq!(reloaded, project);

    let mut a = Session::load(project);
    let mut b = Session::load(reloaded);
    a.run();
    b.run();
    assert_eq!(a.said(), b.said());
    assert_eq!(a.said(), vec!["5050"]);
}

#[test]
fn two_sprites_collaborate_via_broadcasts() {
    let project = Project::new("pingpong")
        .with_global("rally", Constant::Number(0.0))
        .with_sprite(
            SpriteDef::new("Ping").with_script(Script::on_green_flag(vec![
                repeat(
                    num(3.0),
                    vec![broadcast_and_wait("pong"), change_var("rally", num(1.0))],
                ),
                say(var("rally")),
            ])),
        )
        .with_sprite(SpriteDef::new("Pong").with_script(Script::on_message(
            "pong",
            vec![change_var("rally", num(1.0))],
        )));
    let mut session = Session::load(project);
    session.run();
    assert_eq!(session.said(), vec!["6"]);
}

#[test]
fn custom_blocks_compose_across_sprites() {
    let project = Project::new("custom")
        .with_global_block(CustomBlock::reporter_expr(
            "celsius",
            vec!["f".into()],
            div(mul(num(5.0), sub(var("f"), num(32.0))), num(9.0)),
        ))
        .with_global_block(CustomBlock::command(
            "announce",
            vec!["t".into()],
            vec![say(join(vec![
                text("it is "),
                call_custom("celsius", vec![var("t")]),
                text(" C"),
            ]))],
        ))
        .with_sprite(
            SpriteDef::new("Weather").with_script(Script::on_green_flag(vec![Stmt::CallCustom(
                "announce".into(),
                vec![num(212.0)],
            )])),
        );
    let mut session = Session::load(project);
    session.run();
    assert_eq!(session.said(), vec!["it is 100 C"]);
}

#[test]
fn first_class_lists_are_shared_across_scripts() {
    // Two scripts mutate the same global list; reference semantics mean
    // both see each other's items.
    let project = Project::new("shared")
        .with_global("bag", Constant::List(vec![]))
        .with_sprite(
            SpriteDef::new("A")
                .with_script(Script::on_green_flag(vec![
                    add_to_list(text("from A"), var("bag")),
                    wait(num(2.0)),
                    say(length_of(var("bag"))),
                ]))
                .with_script(Script::on_green_flag(vec![add_to_list(
                    text("from B"),
                    var("bag"),
                )])),
        );
    let mut session = Session::load(project);
    session.run();
    assert_eq!(session.said(), vec!["2"]);
}

#[test]
fn clones_inherit_state_but_not_identity() {
    let project = Project::new("clones").with_sprite(
        SpriteDef::new("Stamp")
            .with_script(Script::on_green_flag(vec![
                Stmt::GoToXY(num(10.0), num(20.0)),
                clone_myself(),
                say(text("original")),
            ]))
            .with_script(Script::on_clone_start(vec![
                say(join(vec![text("clone at "), sprite_name()])),
                Stmt::DeleteThisClone,
            ])),
    );
    let mut session = Session::load(project);
    session.run();
    let said = session.said();
    assert!(said.contains(&"original"));
    assert!(said.contains(&"clone at Stamp"));
    assert_eq!(session.vm.world.live_clone_count(), 0);
}

#[test]
fn stage_scripts_run_too() {
    let project = Project::new("stage")
        .with_stage_script(Script::on_green_flag(vec![say(text("stage here"))]));
    let mut session = Session::load(project);
    session.run();
    assert_eq!(session.said(), vec!["stage here"]);
}

#[test]
fn keep_and_combine_work_in_scripts() {
    let project = Project::new("hof").with_sprite(SpriteDef::new("S").with_script(
        Script::on_green_flag(vec![
            // keep evens from 1..10, then sum them: 2+4+6+8+10 = 30
            set_var(
                "evens",
                keep_from(
                    ring_predicate(eq(modulo(empty_slot(), num(2.0)), num(0.0))),
                    numbers_from_to(num(1.0), num(10.0)),
                ),
            ),
            say(combine_using(
                var("evens"),
                ring_reporter(add(empty_slot(), empty_slot())),
            )),
        ]),
    ));
    let mut session = Session::load(project);
    session.run();
    assert_eq!(session.said(), vec!["30"]);
}

#[test]
fn deterministic_rng_makes_runs_reproducible() {
    let project = || {
        Project::new("rng").with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(
            vec![repeat(
                num(5.0),
                vec![say(pick_random(num(1.0), num(100.0)))],
            )],
        )))
    };
    let mut a = Session::load(project());
    let mut b = Session::load(project());
    a.run();
    b.run();
    assert_eq!(a.said(), b.said());
}
