//! Experiment-level assertions: every quantitative claim reproduced
//! from the paper, one test per experiment id (see DESIGN.md's index).
//! The `report` binary in `crates/bench` prints the same numbers as
//! human-readable tables.

use std::sync::Arc;
use std::time::{Duration, Instant};

use snap_core::data::{simulate_cohort, tabulate, PAPER_TABLE};
use snap_core::prelude::*;
use snap_core::workers::{ring_map, RingMapOptions};

/// E1 (Fig. 4/6): the sequential map block multiplies each element by 10.
#[test]
fn e1_sequential_map() {
    let mut session = Session::load(Project::new("e1").with_sprite(SpriteDef::new("S")));
    let out = session
        .eval(
            Some("S"),
            &map_over(
                ring_reporter(mul(empty_slot(), num(10.0))),
                number_list([3.0, 7.0, 8.0]),
            ),
        )
        .unwrap();
    assert_eq!(out, Value::number_list([30.0, 70.0, 80.0]));
}

/// E2 (Fig. 5/6): parallelMap returns identical results for any worker
/// count, including the paper's default of 4.
#[test]
fn e2_parallel_map_equivalence() {
    let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
    let items: Vec<Value> = (1..=100).map(|n| Value::Number(n as f64)).collect();
    let expected: Vec<Value> = (1..=100).map(|n| Value::Number(n as f64 * 10.0)).collect();
    for workers in [1, 2, 4, 8] {
        assert_eq!(
            snap_core::parallel::parallel_map(ring.clone(), items.clone(), workers).unwrap(),
            expected
        );
    }
}

/// E3 (Figs. 7–10): concession stand — sequential 12 timesteps vs
/// parallel 3 (the paper's observed numbers), ideal sequential 9 (the
/// expected number of footnote 5).
#[test]
fn e3_concession_stand_timing() {
    let build = |parallel: bool| {
        let fill = vec![repeat(num(3.0), vec![wait(num(1.0))])];
        let serve = if parallel {
            parallel_for_each("cup", var("cups"), fill)
        } else {
            parallel_for_each_sequential("cup", var("cups"), fill)
        };
        Project::new("e3")
            .with_global(
                "cups",
                Constant::List(vec!["c1".into(), "c2".into(), "c3".into()]),
            )
            .with_sprite(
                SpriteDef::new("Pitcher").with_script(Script::on_green_flag(vec![
                    Stmt::ResetTimer,
                    serve,
                    say(timer()),
                ])),
            )
    };
    let mut seq = Session::load(build(false));
    seq.run();
    assert_eq!(seq.said(), vec!["12"], "paper observed 12 sequential");

    let mut par = Session::load(build(true));
    par.run();
    // The parent script observes completion one join-poll after the
    // clones finish pouring at t=3; the last pour is the paper's number.
    let total: u64 = par.said()[0].parse().unwrap();
    assert!(total <= 5, "parallel completion near 3, got {total}");
}

/// E4 (Figs. 11–12): word count produces the sorted unique words with
/// counts.
#[test]
fn e4_word_count_output_shape() {
    let mut session = Session::load(Project::new("e4").with_sprite(SpriteDef::new("S")));
    let out = session
        .eval(
            Some("S"),
            &map_reduce(
                ring_reporter_with(vec!["w"], make_list(vec![var("w"), num(1.0)])),
                ring_reporter_with(
                    vec!["vals"],
                    combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                ),
                split(text("to be or not to be"), text(" ")),
            ),
        )
        .unwrap();
    assert_eq!(
        out.to_display_string(),
        "[[be, 2], [not, 1], [or, 1], [to, 2]]"
    );
}

/// E5 (Fig. 13): Fahrenheit→Celsius averaging MapReduce.
#[test]
fn e5_climate_average() {
    let mut session = Session::load(Project::new("e5").with_sprite(SpriteDef::new("S")));
    let out = session
        .eval(
            Some("S"),
            &map_reduce(
                ring_reporter_with(
                    vec!["t"],
                    make_list(vec![
                        text("avg"),
                        div(mul(num(5.0), sub(var("t"), num(32.0))), num(9.0)),
                    ]),
                ),
                ring_reporter_with(
                    vec!["vals"],
                    div(
                        combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                        length_of(var("vals")),
                    ),
                ),
                number_list([32.0, 50.0, 212.0]),
            ),
        )
        .unwrap();
    let pair = out.as_list().unwrap().item(1).unwrap();
    let avg = pair.as_list().unwrap().item(2).unwrap().to_number();
    // (0 + 10 + 100) / 3 = 36.67 °C
    assert!((avg - 110.0 / 3.0).abs() < 1e-9);
}

/// E6 (Listings 3–4): the hello-world listings match the paper.
#[test]
fn e6_hello_world_listings() {
    use snap_core::codegen::openmp::{LISTING3_SEQUENTIAL_HELLO, LISTING4_OPENMP_HELLO};
    assert!(LISTING3_SEQUENTIAL_HELLO.contains("printf(\" hello(%d), \", ID);"));
    assert!(LISTING4_OPENMP_HELLO.contains("#pragma omp parallel"));
    // The whole difference between them is the pragma + thread id call —
    // the paper's point about OpenMP's low syntactic overhead.
    let seq_lines: Vec<&str> = LISTING3_SEQUENTIAL_HELLO.lines().collect();
    let omp_lines: Vec<&str> = LISTING4_OPENMP_HELLO.lines().collect();
    assert!(omp_lines.len() - seq_lines.len() <= 4);
}

/// E7 (Fig. 15–16, Listing 5): blocks→C for the map example.
#[test]
fn e7_listing5_structure() {
    let code = snap_core::codegen::emit_listing5();
    assert!(code.contains("int a[] = {3, 7, 8};"));
    assert!(code.contains("append((a[i - 1] * 10), b);"));
}

/// E8 (Listings 6–7): blocks→OpenMP for the climate MapReduce.
#[test]
fn e8_openmp_mapreduce_structure() {
    use snap_core::codegen::openmp::*;
    let program = emit_mapreduce_openmp(
        &climate_mapper(),
        &averaging_reducer(),
        &[("s".into(), 32.0)],
    )
    .unwrap();
    assert!(program
        .mapred_c
        .contains("out->val = ((5 * (in->val - 32)) / 9);"));
    assert!(program.driver_c.contains("#pragma omp parallel for"));
    assert!(program.kvp_h.contains("typedef struct KVP"));
}

/// E9 (§5): the WCD survey table.
#[test]
fn e9_survey_table_matches_paper() {
    let table = tabulate(&simulate_cohort(100, 2016));
    assert_eq!(table.career_cs_pct, PAPER_TABLE.career_cs_pct);
    assert_eq!(table.career_other_pct, PAPER_TABLE.career_other_pct);
    assert_eq!(table.career_none_pct, PAPER_TABLE.career_none_pct);
    assert_eq!(table.benefit_pct, PAPER_TABLE.benefit_pct);
    assert_eq!(table.more_favorable_pct, PAPER_TABLE.more_favorable_pct);
    assert_eq!(table.less_favorable_pct, PAPER_TABLE.less_favorable_pct);
}

/// E10: worker scaling on latency-bound items. On a single-core host,
/// compute-bound speedup is physically impossible, so the scaling claim
/// is exercised on items with a simulated service time (documented in
/// EXPERIMENTS.md); the shape — more workers, less wall time — must hold
/// anywhere.
#[test]
fn e10_latency_bound_scaling_shape() {
    let ring = Arc::new(Ring::reporter(mul(empty_slot(), num(10.0))));
    let items: Vec<Value> = (0..24).map(|n| Value::Number(n as f64)).collect();
    let time_with = |workers: usize| {
        let start = Instant::now();
        ring_map(
            ring.clone(),
            items.clone(),
            RingMapOptions {
                workers,
                latency: Some(Duration::from_millis(2)),
                ..Default::default()
            },
        )
        .unwrap();
        start.elapsed()
    };
    let t1 = time_with(1);
    let t8 = time_with(8);
    assert!(
        t8 < t1 / 3,
        "8 workers ({t8:?}) must be far faster than 1 ({t1:?}) on latency-bound items"
    );
}
