//! Integration tests for the code-mapping pipeline: blocks → text →
//! compiler → execution (paper §6, Fig. 17's workflow).

use snap_core::build::{parse_kv_output, BuildPipeline};
use snap_core::codegen::openmp::{
    averaging_reducer, climate_mapper, emit_mapreduce_openmp, summing_reducer, word_count_mapper,
    OPENMP_HELLO_RUNNABLE,
};
use snap_core::codegen::{emit_c_program, emit_listing5, CodeMapping, Generator, Target};
use snap_core::prelude::*;

fn build_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("psnap-it-{tag}-{}", std::process::id()))
}

#[test]
fn listing5_compiles_and_runs_silently() {
    let pipeline = BuildPipeline::new(build_dir("l5")).unwrap();
    if !pipeline.has_compiler() {
        eprintln!("skipping: no C compiler");
        return;
    }
    pipeline.write_source("l5.c", &emit_listing5()).unwrap();
    let binary = pipeline.compile(&["l5.c"], "l5", false).unwrap();
    assert_eq!(pipeline.run(&binary, &[]).unwrap(), "");
}

#[test]
fn generated_c_scripts_print_what_the_vm_says() {
    // A computational script, run (a) in the VM and (b) as generated C:
    // outputs must match line for line.
    let script = vec![
        set_var("total", num(0.0)),
        for_loop(
            "i",
            num(1.0),
            num(10.0),
            vec![change_var("total", mul(var("i"), var("i")))],
        ),
        say(var("total")),
        if_else(
            gt(var("total"), num(100.0)),
            vec![say(num(1.0))],
            vec![say(num(0.0))],
        ),
    ];

    let project = Project::new("t")
        .with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(script.clone())));
    let mut session = Session::load(project);
    session.run();
    let vm_output: Vec<String> = session.said().iter().map(|s| s.to_string()).collect();

    let pipeline = BuildPipeline::new(build_dir("agree")).unwrap();
    if !pipeline.has_compiler() {
        return;
    }
    let c = emit_c_program(&script).unwrap();
    pipeline.write_source("script.c", &c).unwrap();
    let binary = pipeline.compile(&["script.c"], "script", false).unwrap();
    let c_output: Vec<String> = pipeline
        .run(&binary, &[])
        .unwrap()
        .lines()
        .map(|l| l.trim().to_owned())
        .collect();
    assert_eq!(c_output, vm_output, "C and VM disagree\n{c}");
}

#[test]
fn openmp_hello_runs_with_threads() {
    let pipeline = BuildPipeline::new(build_dir("hello")).unwrap();
    if !pipeline.has_compiler() {
        return;
    }
    pipeline
        .write_source("hello.c", OPENMP_HELLO_RUNNABLE)
        .unwrap();
    let binary = pipeline.compile(&["hello.c"], "hello", true).unwrap();
    let out = pipeline.run(&binary, &[]).unwrap();
    assert!(out.matches("hello(").count() >= 1);
    assert_eq!(out.matches("hello(").count(), out.matches("world(").count());
}

#[test]
fn generated_and_in_vm_mapreduce_agree_on_word_count() {
    let pipeline = BuildPipeline::new(build_dir("wc")).unwrap();
    if !pipeline.has_compiler() {
        return;
    }
    let words = ["snap", "map", "snap", "reduce", "snap", "map"];
    let data: Vec<(String, f64)> = words.iter().map(|w| (w.to_string(), 1.0)).collect();
    let program = emit_mapreduce_openmp(&word_count_mapper(), &summing_reducer(), &data).unwrap();
    let compiled = pipeline.build_and_run_mapreduce(&program).unwrap();

    // In-VM reference through the parallel backend.
    let mut session = Session::load(Project::new("t").with_sprite(SpriteDef::new("S")));
    let result = session
        .eval(
            Some("S"),
            &map_reduce(
                ring_reporter_with(vec!["w"], make_list(vec![var("w"), num(1.0)])),
                ring_reporter_with(
                    vec!["vals"],
                    combine_using(var("vals"), ring_reporter(add(empty_slot(), empty_slot()))),
                ),
                make_list(words.iter().map(|w| text(*w)).collect()),
            ),
        )
        .unwrap();
    let vm_pairs: Vec<(String, f64)> = result
        .as_list()
        .unwrap()
        .to_vec()
        .iter()
        .map(|pair| {
            let pair = pair.as_list().unwrap();
            (
                pair.item(1).unwrap().to_display_string(),
                pair.item(2).unwrap().to_number(),
            )
        })
        .collect();
    assert_eq!(compiled, vm_pairs);
}

#[test]
fn user_defined_mapping_overrides_are_honored() {
    // The paper: "code mappings for new textual languages can easily be
    // specified by the user by creating the corresponding mapping block."
    let mut mapping = CodeMapping::preset(Target::C);
    mapping.set("say", "puts(<#1>); /* custom */");
    let mut generator = Generator::new(&mapping);
    let code = generator.script(&[say(num(1.0))]).unwrap();
    assert_eq!(code, "puts(1); /* custom */");
}

#[test]
fn javascript_and_python_targets_translate_the_same_script() {
    let script = vec![
        set_var("xs", number_list([1.0, 2.0, 3.0])),
        for_each("x", var("xs"), vec![say(var("x"))]),
    ];
    for target in [Target::JavaScript, Target::Python] {
        let mapping = CodeMapping::preset(target);
        let mut generator = Generator::new(&mapping);
        let code = generator.script(&script).unwrap();
        assert!(code.contains("[1, 2, 3]"), "{target:?}:\n{code}");
        assert!(code.contains("for "), "{target:?}:\n{code}");
    }
}

#[test]
fn python_output_actually_runs_when_python_exists() {
    let script = vec![
        set_var("total", num(0.0)),
        for_loop("i", num(1.0), num(4.0), vec![change_var("total", var("i"))]),
        say(var("total")),
    ];
    let mapping = CodeMapping::preset(Target::Python);
    let mut generator = Generator::new(&mapping);
    let code = generator.script(&script).unwrap();
    let out = std::process::Command::new("python3")
        .arg("-c")
        .arg(&code)
        .output();
    match out {
        Ok(out) if out.status.success() => {
            assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "10");
        }
        _ => eprintln!("skipping: no python3"),
    }
}

#[test]
fn parse_kv_output_roundtrip_with_driver_format() {
    let parsed = parse_kv_output("avg 15.625\n");
    assert_eq!(parsed, vec![("avg".to_owned(), 15.625)]);
}

#[test]
fn climate_program_survives_large_embedded_datasets() {
    let pipeline = BuildPipeline::new(build_dir("bigclimate")).unwrap();
    if !pipeline.has_compiler() {
        return;
    }
    let dataset: Vec<(String, f64)> = (0..5000)
        .map(|i| (format!("ST{:03}", i % 25), 30.0 + (i % 60) as f64))
        .collect();
    let program = emit_mapreduce_openmp(&climate_mapper(), &averaging_reducer(), &dataset).unwrap();
    let results = pipeline.build_and_run_mapreduce(&program).unwrap();
    assert_eq!(results.len(), 1, "one 'avg' group");
    let expected =
        snap_core::data::f_to_c(dataset.iter().map(|(_, v)| v).sum::<f64>() / dataset.len() as f64);
    assert!((results[0].1 - expected).abs() < 0.05);
}
