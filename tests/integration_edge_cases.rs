//! Edge cases and failure-injection across the whole stack: the inputs
//! a seventh grader (or a fuzzer) will absolutely produce.

use snap_core::prelude::*;

fn run(project: Project) -> Session {
    let mut session = Session::load(project);
    session.run();
    session
}

fn script(body: Vec<Stmt>) -> Project {
    Project::new("t").with_sprite(SpriteDef::new("S").with_script(Script::on_green_flag(body)))
}

#[test]
fn repeat_zero_and_negative_run_nothing() {
    let session = run(script(vec![
        repeat(num(0.0), vec![say(text("never"))]),
        repeat(num(-5.0), vec![say(text("never"))]),
        say(text("done")),
    ]));
    assert_eq!(session.said(), vec!["done"]);
}

#[test]
fn for_loop_counts_down_when_bounds_reversed() {
    let session = run(script(vec![for_each(
        "x",
        numbers_from_to(num(3.0), num(1.0)),
        vec![say(var("x"))],
    )]));
    assert_eq!(session.said(), vec!["3", "2", "1"]);
}

#[test]
fn negative_wait_is_a_plain_yield() {
    let session = run(script(vec![
        Stmt::ResetTimer,
        wait(num(-10.0)),
        say(timer()),
    ]));
    // max(0): the script resumes the very next frame.
    assert_eq!(session.said(), vec!["1"]);
}

#[test]
fn parallel_for_each_over_empty_list_is_a_no_op() {
    let session = run(script(vec![
        parallel_for_each("it", make_list(vec![]), vec![say(text("never"))]),
        say(text("done")),
    ]));
    assert_eq!(session.said(), vec!["done"]);
    assert_eq!(session.vm.world.live_clone_count(), 0);
}

#[test]
fn parallel_map_over_empty_list_is_empty() {
    let mut session = Session::load(Project::new("t").with_sprite(SpriteDef::new("S")));
    let v = session
        .eval(
            Some("S"),
            &parallel_map_over(
                ring_reporter(mul(empty_slot(), num(10.0))),
                make_list(vec![]),
            ),
        )
        .unwrap();
    assert_eq!(v, Value::list(vec![]));
}

#[test]
fn division_by_zero_follows_ieee() {
    let mut session = Session::load(Project::new("t").with_sprite(SpriteDef::new("S")));
    let v = session
        .eval(Some("S"), &div(num(1.0), num(0.0)))
        .unwrap()
        .to_number();
    assert!(v.is_infinite());
    let nan = session
        .eval(Some("S"), &div(num(0.0), num(0.0)))
        .unwrap()
        .to_number();
    assert!(nan.is_nan());
}

#[test]
fn item_of_empty_list_kills_only_that_script() {
    let project = Project::new("t").with_sprite(
        SpriteDef::new("S")
            .with_script(Script::on_green_flag(vec![
                say(item(num(1.0), make_list(vec![]))),
                say(text("unreachable")),
            ]))
            .with_script(Script::on_green_flag(vec![say(text("survivor"))])),
    );
    let session = run(project);
    assert_eq!(session.said(), vec!["survivor"]);
    assert_eq!(session.errors().len(), 1);
}

#[test]
fn clone_of_clone_works_and_cleans_up() {
    let project = Project::new("t").with_sprite(
        SpriteDef::new("S")
            .with_script(Script::on_green_flag(vec![
                set_var("depth", num(0.0)),
                clone_myself(),
                wait(num(5.0)),
            ]))
            .with_script(Script::on_clone_start(vec![
                change_var("depth", num(1.0)),
                if_then(lt(var("depth"), num(3.0)), vec![clone_myself()]),
                say(var("depth")),
                Stmt::DeleteThisClone,
            ])),
    );
    let session = run(project);
    assert_eq!(session.said(), vec!["1", "2", "3"]);
    assert_eq!(session.vm.world.live_clone_count(), 0);
}

#[test]
fn broadcast_with_no_receivers_is_fine() {
    let session = run(script(vec![
        broadcast("into the void"),
        broadcast_and_wait("also nothing"),
        say(text("done")),
    ]));
    assert_eq!(session.said(), vec!["done"]);
}

#[test]
fn broadcast_during_broadcast_chains() {
    let project = Project::new("t").with_sprite(
        SpriteDef::new("S")
            .with_script(Script::on_green_flag(vec![broadcast_and_wait("one")]))
            .with_script(Script::on_message(
                "one",
                vec![say(text("one")), broadcast_and_wait("two")],
            ))
            .with_script(Script::on_message("two", vec![say(text("two"))])),
    );
    let session = run(project);
    assert_eq!(session.said(), vec!["one", "two"]);
}

#[test]
fn stop_this_script_inside_nested_loops_unwinds_everything() {
    let session = run(script(vec![
        forever(vec![forever(vec![
            say(text("once")),
            Stmt::Stop(StopKind::ThisScript),
        ])]),
        say(text("unreachable")),
    ]));
    assert_eq!(session.said(), vec!["once"]);
}

#[test]
fn deeply_nested_loops_do_not_blow_the_stack() {
    // 16 nested repeats of 2 iterations each: 2^16 = 65536 increments
    // through a 16-deep loop-task stack, all inside warp.
    let mut body = vec![change_var("n", num(1.0))];
    for _ in 0..16 {
        body = vec![repeat(num(2.0), body)];
    }
    let mut stmts = vec![set_var("n", num(0.0)), warp(body)];
    stmts.push(say(var("n")));
    let session = run(script(stmts));
    let n: f64 = session.said()[0].parse().unwrap();
    assert_eq!(n, (1u64 << 16) as f64);
}

#[test]
fn text_and_number_coercion_in_arithmetic() {
    let mut session = Session::load(Project::new("t").with_sprite(SpriteDef::new("S")));
    // "5" + "3" = 8 (numeric text), "x" + 3 = 3 (non-numeric → 0).
    assert_eq!(
        session.eval(Some("S"), &add(text("5"), text("3"))).unwrap(),
        Value::Number(8.0)
    );
    assert_eq!(
        session.eval(Some("S"), &add(text("x"), num(3.0))).unwrap(),
        Value::Number(3.0)
    );
}

#[test]
fn unicode_text_survives_the_whole_stack() {
    let word = "héllo wörld 🌍";
    let project = script(vec![say(join(vec![text(word), text("!")]))]);
    let json = project.to_json();
    let xml = project.to_xml();
    let mut via_json = Session::load_json(&json).unwrap();
    via_json.run();
    let mut via_xml = Session::load_xml(&xml).unwrap();
    via_xml.run();
    assert_eq!(via_json.said(), vec![format!("{word}!")]);
    assert_eq!(via_json.said(), via_xml.said());
}

#[test]
fn huge_parallelism_request_is_clamped_to_list_length() {
    let session = run(script(vec![
        parallel_for_each_n(
            "x",
            number_list([1.0, 2.0]),
            num(1_000_000.0),
            vec![say(var("x"))],
        ),
        say(text("done")),
    ]));
    let mut said = session.said();
    said.sort();
    assert_eq!(said, vec!["1", "2", "done"]);
}

#[test]
fn ring_called_with_wrong_arity_errors_cleanly() {
    let mut session = Session::load(Project::new("t").with_sprite(SpriteDef::new("S")));
    let err = session
        .eval(
            Some("S"),
            &call_ring(
                ring_reporter_with(vec!["a", "b"], add(var("a"), var("b"))),
                vec![num(1.0)],
            ),
        )
        .unwrap_err();
    assert!(err.to_string().contains("2 inputs"));
}

#[test]
fn map_over_non_list_reports_a_type_error() {
    let mut session = Session::load(Project::new("t").with_sprite(SpriteDef::new("S")));
    let err = session
        .eval(Some("S"), &map_over(ring_reporter(empty_slot()), num(42.0)))
        .unwrap_err();
    assert!(err.to_string().contains("expected a list"));
}

#[test]
fn timer_survives_very_long_runs() {
    let session = run(script(vec![
        Stmt::ResetTimer,
        repeat(num(500.0), vec![wait(num(1.0))]),
        say(timer()),
    ]));
    assert_eq!(session.said(), vec!["500"]);
}

#[test]
fn many_concurrent_scripts_all_finish() {
    let mut project = Project::new("t");
    let mut sprite = SpriteDef::new("S");
    for i in 0..50 {
        sprite = sprite.with_script(Script::on_green_flag(vec![
            wait(num((i % 7) as f64)),
            change_var("done", num(1.0)),
        ]));
    }
    project = project
        .with_global("done", Constant::Number(0.0))
        .with_sprite(sprite);
    let session = run(project);
    assert_eq!(session.vm.world.global("done"), Some(&Value::Number(50.0)));
}
